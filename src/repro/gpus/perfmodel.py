"""Base analytical kernel performance model.

Every BAT benchmark in :mod:`repro.kernels` provides a subclass of
:class:`AnalyticalKernelModel` that describes, for a given configuration:

* the *launch shape* (threads per block, number of blocks, per-thread registers,
  per-block shared memory) -- consumed by the occupancy calculator;
* the *work* (floating-point operations) and the *DRAM traffic* (bytes, with access
  efficiency) -- consumed by a roofline-style combiner;
* kernel-specific *efficiency factors* (divergence, instruction mix, software caching).

The combiner in :meth:`AnalyticalKernelModel.compose` turns those ingredients into a
simulated runtime.  It is deliberately a *latency-aware roofline*: at full occupancy
compute and memory phases overlap (time = max of the two), while at low occupancy the
hardware cannot hide latency and the phases serialise (time tends to their sum).  Two
additional first-order GPU effects are modelled because several tuning parameters act
through them: the *tail effect* (the last wave of blocks underutilises the SMs when the
grid is small) and *register spilling* (configurations whose estimated register demand
exceeds the hardware cap pay a local-memory penalty).

The absolute times produced are approximations -- the reproduction does not claim
nanosecond fidelity -- but the *relative* structure (which parameters matter, how they
interact, how optima move between architectures) follows from the same mechanisms that
drive real hardware, which is what the paper's analyses measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.errors import ResourceLimitError
from repro.gpus.memory import MemoryTraffic, dram_time_ms
from repro.gpus.noise import config_noise
from repro.gpus.occupancy import OccupancyResult, compute_occupancy
from repro.gpus.specs import GPUSpec

__all__ = [
    "KernelLaunchConfig",
    "ModelEstimate",
    "AnalyticalKernelModel",
    "occupancy_throughput_factor",
    "ilp_factor",
    "tail_effect_factor",
]


@dataclass(frozen=True)
class KernelLaunchConfig:
    """Launch shape of one kernel invocation.

    Attributes
    ----------
    threads_per_block:
        Total threads per block (product of the block dimensions).
    grid_blocks:
        Total number of thread blocks launched.
    registers_per_thread:
        Estimated register demand per thread.
    shared_mem_bytes:
        Shared memory requested per block, in bytes.
    blocks_per_sm_hint:
        Value of a ``__launch_bounds__``-style tuning parameter (0 = no hint).
    launches:
        Number of back-to-back kernel launches needed for the whole problem (e.g.
        Hotspot performs ``total_iterations / temporal_tiling_factor`` launches).
    """

    threads_per_block: int
    grid_blocks: int
    registers_per_thread: float
    shared_mem_bytes: float
    blocks_per_sm_hint: int = 0
    launches: int = 1


@dataclass
class ModelEstimate:
    """Full breakdown of one simulated measurement.

    The analysis layer only needs :attr:`time_ms`, but the breakdown is kept for the
    ablation benchmarks and for debugging model calibration.
    """

    time_ms: float
    compute_time_ms: float
    memory_time_ms: float
    occupancy: OccupancyResult
    launch: KernelLaunchConfig
    factors: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable breakdown."""
        return {
            "time_ms": self.time_ms,
            "compute_time_ms": self.compute_time_ms,
            "memory_time_ms": self.memory_time_ms,
            "occupancy": self.occupancy.occupancy,
            "limiting_factor": self.occupancy.limiting_factor,
            "threads_per_block": self.launch.threads_per_block,
            "grid_blocks": self.launch.grid_blocks,
            "factors": dict(self.factors),
        }


# ----------------------------------------------------------------------- helper curves


def occupancy_throughput_factor(occupancy: float, saturation: float) -> float:
    """Fraction of peak throughput sustained at a given occupancy.

    GPUs reach full throughput well below 100% occupancy; ``saturation`` is the
    occupancy at which the curve flattens (lower for compute-bound kernels with high
    ILP, higher for latency/memory-bound kernels).  Below saturation the curve is a
    smooth concave ramp rather than a straight line, matching measured behaviour.
    """
    saturation = min(max(saturation, 1e-3), 1.0)
    x = min(max(occupancy, 0.0), 1.0) / saturation
    if x >= 1.0:
        return 1.0
    # Smooth ramp: sqrt-shaped so the first warps contribute the most.
    return max(math.sqrt(x) * (0.55 + 0.45 * x), 0.02)


def ilp_factor(unroll: int, best_unroll: int, falloff: float = 0.03) -> float:
    """Instruction-level-parallelism benefit of partial loop unrolling.

    Benefit grows logarithmically up to ``best_unroll`` and then degrades gently
    (instruction-cache pressure, scheduler pressure).  ``unroll=0`` means "compiler
    decides" and is treated as a modest default benefit.
    """
    if unroll <= 0:
        return 0.92
    best_unroll = max(best_unroll, 1)
    if unroll <= best_unroll:
        span = math.log2(best_unroll) if best_unroll > 1 else 1.0
        return 0.80 + 0.20 * (math.log2(unroll) / span if span else 1.0)
    over = math.log2(unroll / best_unroll)
    return max(1.0 - falloff * over, 0.75)


def tail_effect_factor(gpu: GPUSpec, grid_blocks: int, blocks_per_sm: int) -> float:
    """SM utilisation of the block schedule in ``(0, 1]``.

    When the grid has fewer blocks than the device can keep resident -- or the last
    wave is only partially full -- part of the machine idles.  The factor is the
    fraction of resident-block slots doing useful work averaged over waves.
    """
    if grid_blocks <= 0:
        return 1e-3
    blocks_per_sm = max(blocks_per_sm, 1)
    concurrent = gpu.sm_count * blocks_per_sm
    waves = math.ceil(grid_blocks / concurrent)
    return min(grid_blocks / (waves * concurrent), 1.0)


# -------------------------------------------------------------------------- base model


class AnalyticalKernelModel:
    """Base class of the per-kernel analytical models.

    Subclasses implement :meth:`launch_config`, :meth:`flops`, :meth:`traffic`,
    :meth:`compute_efficiency` and optionally :meth:`extra_time_ms`, and inherit the
    roofline combiner plus the noise model.

    Parameters
    ----------
    name:
        Benchmark name, used for noise seeding and reports.
    occupancy_saturation:
        Occupancy at which the kernel reaches full throughput (kernel-specific
        calibration; compute-dense kernels saturate earlier).
    noise_sigma:
        Standard deviation of the persistent per-configuration lognormal model error.
    """

    def __init__(self, name: str, occupancy_saturation: float = 0.45,
                 noise_sigma: float = 0.015):
        self.name = name
        self.occupancy_saturation = occupancy_saturation
        self.noise_sigma = noise_sigma

    # ----------------------------------------------------- subclass responsibilities

    def launch_config(self, config: Mapping[str, Any], gpu: GPUSpec) -> KernelLaunchConfig:
        """Launch shape for ``config`` on ``gpu``."""
        raise NotImplementedError

    def flops(self, config: Mapping[str, Any], gpu: GPUSpec) -> float:
        """Total floating-point operations of the whole problem for ``config``."""
        raise NotImplementedError

    def traffic(self, config: Mapping[str, Any], gpu: GPUSpec) -> MemoryTraffic:
        """DRAM traffic (bytes + access efficiency) of the whole problem."""
        raise NotImplementedError

    def compute_efficiency(self, config: Mapping[str, Any], gpu: GPUSpec,
                           occupancy: OccupancyResult) -> float:
        """Fraction of peak FLOP/s the instruction stream can sustain at full occupancy."""
        return 1.0

    def extra_time_ms(self, config: Mapping[str, Any], gpu: GPUSpec,
                      launch: KernelLaunchConfig) -> float:
        """Additional fixed time (host-side work, extra launches); default none."""
        return 0.0

    # ------------------------------------------------------------------ composition

    def _effective_registers(self, gpu: GPUSpec, launch: KernelLaunchConfig) -> tuple[float, float]:
        """Registers per thread after the compiler's launch-feasibility cap.

        Real compilers never emit a kernel that cannot launch because of register
        demand: ``nvcc`` caps the per-thread register count so that at least one block
        fits on an SM (and honours ``__launch_bounds__``) and spills the rest to local
        memory.  Returns ``(effective_registers, spill_fraction)`` where the spill
        fraction is the relative amount of demand that had to be spilled.
        """
        demanded = max(launch.registers_per_thread, 1.0)
        # Hardware cap per thread plus "one block must fit" cap.
        cap = min(float(gpu.max_registers_per_thread),
                  gpu.registers_per_sm / max(launch.threads_per_block, 1))
        if launch.blocks_per_sm_hint and launch.blocks_per_sm_hint > 0:
            cap = min(cap, gpu.registers_per_sm /
                      max(launch.blocks_per_sm_hint * launch.threads_per_block, 1))
        cap = max(cap, 16.0)  # the ABI always grants a handful of registers
        if demanded <= cap:
            return demanded, 0.0
        return cap, (demanded - cap) / demanded

    def occupancy(self, config: Mapping[str, Any], gpu: GPUSpec) -> OccupancyResult:
        """Occupancy of ``config`` on ``gpu`` (raises ResourceLimitError if unlaunchable)."""
        launch = self.launch_config(config, gpu)
        regs, _ = self._effective_registers(gpu, launch)
        return compute_occupancy(gpu, launch.threads_per_block, regs,
                                 launch.shared_mem_bytes, launch.blocks_per_sm_hint)

    def estimate(self, config: Mapping[str, Any], gpu: GPUSpec,
                 with_noise: bool = True) -> ModelEstimate:
        """Full simulated measurement of ``config`` on ``gpu``.

        Raises
        ------
        ResourceLimitError
            If the configuration cannot launch on the device (propagated from the
            occupancy calculator); callers treat this as an invalid configuration.
        """
        launch = self.launch_config(config, gpu)
        regs, spill_fraction = self._effective_registers(gpu, launch)
        occ = compute_occupancy(gpu, launch.threads_per_block, regs,
                                launch.shared_mem_bytes, launch.blocks_per_sm_hint)
        if occ.blocks_per_sm <= 0:
            raise ResourceLimitError(
                f"configuration cannot keep a single block resident on {gpu.name}",
                resource=occ.limiting_factor)

        return self.compose(config, gpu, launch, occ, with_noise=with_noise,
                            spill_fraction=spill_fraction)

    def compose(self, config: Mapping[str, Any], gpu: GPUSpec, launch: KernelLaunchConfig,
                occ: OccupancyResult, with_noise: bool = True,
                spill_fraction: float = 0.0) -> ModelEstimate:
        """Combine work, traffic and occupancy into a runtime estimate."""
        flops = self.flops(config, gpu)
        traffic = self.traffic(config, gpu)
        compute_eff = max(min(self.compute_efficiency(config, gpu, occ), 1.0), 1e-3)

        occ_factor = occupancy_throughput_factor(occ.occupancy, self.occupancy_saturation)
        tail = tail_effect_factor(gpu, launch.grid_blocks, occ.blocks_per_sm)

        # Register spilling: demand the compiler could not fit goes to local memory,
        # costing extra instructions and extra traffic on every access.
        spill_factor = 1.0 + 1.2 * max(spill_fraction, 0.0)

        sustained_flops = gpu.peak_flops * compute_eff * occ_factor * tail
        compute_time_ms = flops / sustained_flops * 1e3 * spill_factor

        # DRAM bandwidth is a device-wide resource: even modest occupancy keeps enough
        # loads in flight to approach peak, so the memory stream saturates at a lower
        # occupancy than the ALUs and never degrades as steeply.
        mem_occ_factor = max(
            occupancy_throughput_factor(occ.occupancy, self.occupancy_saturation * 0.5),
            0.40)
        memory_time_ms = dram_time_ms(gpu, traffic) / max(mem_occ_factor * tail, 1e-3)

        # Latency-aware overlap: full overlap at saturated occupancy, serialisation
        # when the SM has too few warps to hide either latency.
        hiding = min(occ.occupancy / self.occupancy_saturation, 1.0)
        overlapped = max(compute_time_ms, memory_time_ms)
        serialised = min(compute_time_ms, memory_time_ms)
        kernel_time_ms = overlapped + (1.0 - hiding) * serialised

        # flops()/traffic() describe the WHOLE problem (all launches together); only
        # the per-launch overhead scales with the launch count.
        launch_overhead_ms = gpu.kernel_launch_overhead_us * 1e-3 * max(launch.launches, 1)
        total = (kernel_time_ms
                 + launch_overhead_ms
                 + self.extra_time_ms(config, gpu, launch))

        factors = {
            "occupancy_factor": occ_factor,
            "tail_factor": tail,
            "compute_efficiency": compute_eff,
            "memory_efficiency": traffic.efficiency,
            "spill_factor": spill_factor,
            "hiding": hiding,
        }

        if with_noise:
            noise = config_noise(gpu.name, self.name, config, sigma=self.noise_sigma)
            total *= noise
            factors["noise"] = noise

        return ModelEstimate(
            time_ms=float(total),
            compute_time_ms=float(compute_time_ms),
            memory_time_ms=float(memory_time_ms),
            occupancy=occ,
            launch=launch,
            factors=factors,
        )

    def time_ms(self, config: Mapping[str, Any], gpu: GPUSpec,
                with_noise: bool = True) -> float:
        """Simulated runtime in milliseconds (shortcut around :meth:`estimate`)."""
        return self.estimate(config, gpu, with_noise=with_noise).time_ms
