"""Shared fixtures for the test suite.

The fixtures deliberately use small workloads and small sampled campaigns so the whole
suite runs in a couple of minutes; the paper-scale campaign sizes are exercised by the
benchmark harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.campaign import Campaign
from repro.core.parameter import Parameter
from repro.core.constraints import ConstraintSet
from repro.core.searchspace import SearchSpace
from repro.gpus.specs import all_gpus, RTX_2080_TI, RTX_3090
from repro.kernels import all_benchmarks


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: tier-2 wall-clock smoke checks of the vectorized search-space engine "
        "(run in isolation with `pytest -m perf` or scripts/run_perf.sh --smoke)")


@pytest.fixture(scope="session")
def gpus():
    """The four simulated GPUs of the paper's testbed."""
    return all_gpus()


@pytest.fixture(scope="session")
def gpu_3090():
    """The RTX 3090 spec (Ampere)."""
    return RTX_3090


@pytest.fixture(scope="session")
def gpu_2080ti():
    """The RTX 2080 Ti spec (Turing)."""
    return RTX_2080_TI


@pytest.fixture(scope="session")
def benchmarks():
    """The full benchmark suite with default (paper-scale) workloads."""
    return all_benchmarks()


@pytest.fixture(scope="session")
def pnpoly(benchmarks):
    """The smallest benchmark (4 092 configurations), used by most tuner tests."""
    return benchmarks["pnpoly"]


@pytest.fixture(scope="session")
def small_space():
    """A tiny constrained search space with known structure, for core-data-structure tests."""
    parameters = [
        Parameter("block", (32, 64, 128, 256), description="threads per block"),
        Parameter("tile", (1, 2, 4), description="work per thread"),
        Parameter("vector", (1, 2, 4, 8), description="vector width"),
        Parameter("cache", (0, 1), description="use shared memory"),
    ]
    constraints = ConstraintSet(["block * tile <= 512", "vector <= tile * 4"])
    return SearchSpace(parameters, constraints, name="toy")


@pytest.fixture(scope="session")
def small_campaign(benchmarks, gpus):
    """A reduced campaign (two GPUs, small samples) shared across analysis tests."""
    selected_gpus = {name: gpus[name] for name in ("RTX_3090", "RTX_2080_Ti")}
    selected_benchmarks = {name: benchmarks[name]
                           for name in ("pnpoly", "nbody", "hotspot", "convolution")}
    campaign = Campaign(selected_benchmarks, selected_gpus, sample_size=400,
                        exhaustive_limit=10_000, seed=7)
    return campaign


@pytest.fixture(scope="session")
def pnpoly_cache_3090(small_campaign):
    """Exhaustive Pnpoly cache on the RTX 3090."""
    return small_campaign.cache("pnpoly", "RTX_3090")


@pytest.fixture()
def rng():
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
