"""Tests of the index-native tuner runtime.

Three layers of protection:

* **Trajectory equivalence** -- every migrated tuner, run on every kernel space
  (analytical-model problems plus cache replays), must reproduce the pinned
  pre-refactor golden trajectories byte for byte: same space indices, same values,
  same validity flags, same error strings, same evaluation order.  The goldens in
  ``tests/data/golden_trajectories.json.gz`` were generated at the seed revision by
  ``scripts/pin_golden_trajectories.py``.
* **Pairwise path equivalence** -- the index-native primitives (digit-arithmetic
  neighbourhoods, columnar cache lookups, ``evaluate_index``, scalar feasibility
  fast paths, tiled sweeps, bulk budget charging) agree element-wise with their
  dictionary-based counterparts on every kernel space.
* **Lazy-configuration semantics** -- :class:`repro.core.result.LazyConfig` is
  observably identical to the dictionary it defers.
"""

from __future__ import annotations

import gzip
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core.budget import Budget
from repro.core.cache import EvaluationCache
from repro.core.errors import BudgetExhaustedError
from repro.core.parameter import Parameter
from repro.core.result import LazyConfig, Observation, TuningResult
from repro.core.runner import run_tuning
from repro.core.searchspace import SearchSpace, config_key
from repro.gpus.specs import RTX_3090
from repro.tuners import (
    DifferentialEvolution,
    GeneticAlgorithm,
    GreedyILS,
    GridSearch,
    LocalSearch,
    ParticleSwarm,
    RandomSearch,
    SimulatedAnnealing,
    SurrogateSearch,
)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trajectories.json.gz"

GOLDEN_TUNERS = {
    "random": lambda: RandomSearch(),
    "grid_shuffled": lambda: GridSearch(stride=7919, shuffle=True),
    "local_first": lambda: LocalSearch(strategy="first"),
    "local_best": lambda: LocalSearch(strategy="best"),
    "greedy_ils": lambda: GreedyILS(perturbation_strength=2),
    "annealing": lambda: SimulatedAnnealing(),
    "genetic": lambda: GeneticAlgorithm(population_size=10),
    "diff_evo": lambda: DifferentialEvolution(population_size=8),
    "pso": lambda: ParticleSwarm(swarm_size=8),
    "surrogate": lambda: SurrogateSearch(initial_samples=12, batch_size=4,
                                         candidate_pool=120, n_estimators=15),
}


@pytest.fixture(scope="module")
def golden():
    with gzip.open(GOLDEN_PATH) as fh:
        return json.loads(fh.read())


@pytest.fixture(scope="module")
def golden_problems(benchmarks):
    """Fresh-problem factories matching scripts/pin_golden_trajectories.py."""
    factories = {}
    for name, benchmark in benchmarks.items():
        factories[f"model:{name}"] = (
            lambda b=benchmark: b.problem(RTX_3090, with_noise=True))
    for name in ("hotspot", "gemm"):
        cache = benchmarks[name].build_cache(RTX_3090, sample_size=400, seed=5)
        factories[f"replay:{name}"] = (
            lambda c=cache: c.to_problem(strict=True, memoize=True))
    return factories


class TestGoldenTrajectories:
    """Every migrated tuner reproduces the pinned seed trajectories exactly."""

    @pytest.mark.parametrize("tuner_name", sorted(GOLDEN_TUNERS))
    def test_byte_identical_to_seed_run(self, tuner_name, golden, golden_problems):
        budget = golden["_meta"]["budget"]
        seed = golden["_meta"]["seed"]
        for problem_name, make_problem in golden_problems.items():
            key = f"{tuner_name}@{problem_name}"
            problem = make_problem()
            result = run_tuning(GOLDEN_TUNERS[tuner_name](), problem,
                                max_evaluations=budget, seed=seed)
            space = problem.space
            got = []
            for obs in result.observations:
                value = None if not math.isfinite(obs.value) else obs.value
                got.append([space.index_of(obs.config), value, bool(obs.valid),
                            obs.error, obs.evaluation_index])
            assert got == golden["runs"][key], key
            # The recorded configurations (lazily materialised) must equal the
            # decoded golden indices, dictionary for dictionary.
            for obs, row in zip(result.observations, golden["runs"][key]):
                assert dict(obs.config) == space.config_at(row[0]), key


class TestLazyConfig:
    def test_behaves_like_the_materialised_dict(self, small_space):
        lazy = LazyConfig(small_space, 17)
        concrete = small_space.config_at(17)
        assert lazy == concrete
        assert concrete == lazy
        assert dict(lazy) == concrete
        assert len(lazy) == len(concrete)
        assert set(lazy) == set(concrete)
        assert lazy["block"] == concrete["block"]
        assert lazy.get("tile") == concrete["tile"]
        assert "vector" in lazy
        assert config_key(lazy) == config_key(concrete)
        assert lazy.space_index == 17
        assert json.dumps(dict(lazy)) == json.dumps(concrete)

    def test_materialises_once_and_only_on_demand(self, small_space):
        lazy = LazyConfig(small_space, 3)
        assert lazy._config is None  # nothing read yet
        first = lazy["block"]
        assert lazy._config is not None
        assert lazy._materialize() is lazy._materialize()
        assert first == small_space.config_at(3)["block"]

    def test_observation_keeps_lazy_config_unmaterialised(self, small_space):
        obs = Observation(config=LazyConfig(small_space, 5), value=1.0)
        assert isinstance(obs.config, LazyConfig)
        assert obs.to_dict()["config"] == small_space.config_at(5)
        plain = Observation(config=small_space.config_at(5), value=1.0)
        assert obs == plain

    def test_observation_fast_matches_constructor(self, small_space):
        config = small_space.config_at(9)
        a = Observation(config=config, value=2.5, valid=True, error="",
                        evaluation_index=4, gpu="g", benchmark="b")
        b = Observation.fast(dict(config), 2.5, True, "", 4, "g", "b")
        assert a == b
        assert a.to_dict() == b.to_dict()


class TestNeighborhoodKernels:
    @pytest.mark.parametrize("strategy", ["hamming", "adjacent"])
    def test_matches_dict_neighborhood_on_kernel_spaces(self, benchmarks, strategy):
        rng = np.random.default_rng(7)
        for name in ("gemm", "hotspot", "pnpoly"):
            space = benchmarks[name].space
            for _ in range(5):
                index = space.sample_one_index(rng=rng, valid_only=True)
                for valid_only in (True, False):
                    got = space.neighbor_indices(index, strategy=strategy,
                                                 valid_only=valid_only)
                    expected = space.neighbors(space.config_at(index),
                                               strategy=strategy,
                                               valid_only=valid_only)
                    assert space.configs_at(got) == expected, (name, index)

    def test_neighbor_memo_returns_consistent_arrays(self, small_space):
        a = small_space.neighbor_indices(5, strategy="hamming")
        b = small_space.neighbor_indices(5, strategy="hamming")
        assert a is b  # memoized
        assert not a.flags.writeable

    def test_unknown_strategy_raises(self, small_space):
        from repro.core.errors import InvalidConfigurationError
        with pytest.raises(InvalidConfigurationError):
            small_space.neighbor_indices(0, strategy="sideways")


class TestScalarFeasibilityFastPaths:
    def test_index_is_feasible_matches_is_valid(self, benchmarks):
        rng = np.random.default_rng(11)
        for name, benchmark in benchmarks.items():
            space = benchmark.space
            indices = rng.integers(0, space.cardinality, size=50)
            for index in indices.tolist():
                assert space.index_is_feasible(index) == \
                    space.is_valid(space.config_at(index)), (name, index)

    def test_is_satisfied_fast_matches_is_satisfied(self, benchmarks):
        rng = np.random.default_rng(13)
        for name, benchmark in benchmarks.items():
            space = benchmark.space
            for index in rng.integers(0, space.cardinality, size=30).tolist():
                config = space.config_at(index)
                assert space.constraints.is_satisfied_fast(config) == \
                    space.constraints.is_satisfied(config), (name, index)

    def test_fast_path_with_callable_falls_back(self):
        space = SearchSpace([Parameter("a", (1, 2, 3, 4))],
                            [lambda c: c["a"] != 3])
        assert space.index_is_feasible(0)
        assert not space.index_is_feasible(2)
        assert space.constraints.is_satisfied_fast({"a": 3}) is False

    def test_fast_path_survives_unconjoinable_expressions(self):
        # A trailing comment is a valid standalone expression but swallows the
        # closing paren when parenthesized into the conjunction; the fast path
        # must fall back to the per-constraint loop instead of crashing.
        space = SearchSpace([Parameter("a", (1, 2, 3, 4))],
                            ["a > 1  # must exceed one"])
        assert not space.index_is_feasible(0)
        assert space.index_is_feasible(2)
        assert space.sample_one_index(rng=np.random.default_rng(0)) in range(4)

    def test_sample_one_index_matches_sample_one(self, benchmarks):
        for name in ("hotspot", "gemm"):
            space = benchmarks[name].space
            a = space.sample_one_index(rng=np.random.default_rng(3))
            b = space.sample_one(rng=np.random.default_rng(3))
            assert space.config_at(a) == b, name


class TestTiledFeasibilitySweep:
    def test_range_mask_matches_digit_gather(self, benchmarks):
        for name, benchmark in benchmarks.items():
            space = benchmark.space
            for start, stop in ((0, min(6000, space.cardinality)),
                                (max(0, space.cardinality - 4000),
                                 space.cardinality)):
                tiled = space._feasible_mask_range(start, stop)
                gathered = space.satisfied_mask(
                    None, digits=space._digits_for_range(start, stop))
                assert np.array_equal(tiled, gathered), name

    def test_tiling_skips_unreferenced_columns(self, small_space):
        referenced = small_space.constraints.referenced_parameters()
        assert referenced == frozenset({"block", "tile", "vector"})
        columns = small_space._columns_for_range(0, 24, names=referenced)
        assert set(columns) == set(referenced)  # "cache" never materialised


class TestColumnarCacheLookups:
    def _build_cache(self, space, n=60, seed=0):
        cache = EvaluationCache("bench", "GPU", space)
        rng = np.random.default_rng(seed)
        indices = rng.choice(space.cardinality, size=n, replace=False)
        for k, index in enumerate(indices.tolist()):
            valid = k % 5 != 0
            cache.add(space.config_at(index), float(k + 1) if valid else math.inf,
                      valid=valid, error="" if valid else "boom")
        return cache, indices

    def test_lookup_agrees_with_dict_store(self, small_space):
        cache, indices = self._build_cache(small_space)
        table = cache.index_table()
        probe = np.concatenate([indices, [0, 1, 2, 3]])
        values, failure, found = table.lookup(probe)
        for index, value, fail, hit in zip(probe.tolist(), values, failure, found):
            obs = cache.get(small_space.config_at(index))
            assert hit == (obs is not None)
            if obs is not None:
                assert fail == obs.is_failure
                if not obs.is_failure:
                    assert value == obs.value
            assert table.lookup_one(index) == (value, fail, hit)

    def test_mutations_after_build_stay_in_sync(self, small_space):
        cache, _ = self._build_cache(small_space)
        table = cache.index_table()
        config = small_space.config_at(7)
        cache.add(config, 123.0)           # fresh entry after the build
        cache.add(config, 124.0)           # overwrite, same index
        value, fail, found = cache.index_table().lookup_one(7)
        assert (value, fail, found) == (124.0, False, True)
        assert cache.index_table() is table  # same table, synced in place

    def test_out_of_range_probes_are_misses(self, small_space, benchmarks,
                                            gpu_3090):
        dense_cache, _ = self._build_cache(small_space)
        hashed_cache = benchmarks["hotspot"].build_cache(gpu_3090, sample_size=20,
                                                         seed=8)
        for cache in (dense_cache, hashed_cache):
            table = cache.index_table()
            assert table.lookup_one(-1) == (math.inf, True, False)
            assert table.lookup_one(cache.space.cardinality + 5) == \
                (math.inf, True, False)
            _, _, found = table.lookup(np.asarray([-1, -95,
                                                   cache.space.cardinality]))
            assert not found.any()

    def test_duplicate_indices_in_one_batch_do_not_leak_rows(self, small_space):
        cache = EvaluationCache("bench", "GPU", small_space)
        table = cache.index_table()  # built empty; adds now queue as pending
        config = small_space.config_at(5)
        cache.add(config, 1.0)
        cache.add(config, 2.0)  # overwrite inside the same pending flush
        table = cache.index_table()
        assert len(table) == 1
        assert table.lookup_one(5) == (2.0, False, True)

    def test_hashed_table_for_huge_spaces(self, benchmarks, gpu_3090):
        cache = benchmarks["hotspot"].build_cache(gpu_3090, sample_size=50, seed=2)
        table = cache.index_table()
        assert not table._dense  # hotspot cardinality exceeds the dense ceiling
        space = cache.space
        for obs in cache:
            index = space.index_of(obs.config)
            value, fail, found = table.lookup_one(index)
            assert found and fail == obs.is_failure


class TestEvaluateIndex:
    def test_matches_dict_evaluation(self, benchmarks, gpu_3090):
        benchmark = benchmarks["pnpoly"]
        rng = np.random.default_rng(5)
        indices = rng.integers(0, benchmark.space.cardinality, size=40)
        dict_problem = benchmark.problem(gpu_3090)
        index_problem = benchmark.problem(gpu_3090)
        for index in indices.tolist():
            a = dict_problem.evaluate(benchmark.space.config_at(index))
            b = index_problem.evaluate_index(index)
            assert a.to_dict() == b.to_dict()

    def test_replay_matches_dict_evaluation_including_misses(self, benchmarks,
                                                             gpu_3090):
        cache = benchmarks["gemm"].build_cache(gpu_3090, sample_size=100, seed=9)
        space = cache.space
        stored = space.indices_of_configs([dict(o.config) for o in cache])[:20]
        rng = np.random.default_rng(1)
        probes = np.concatenate([stored, rng.integers(0, space.cardinality, 20)])
        for strict in (True, False):
            dict_problem = cache.to_problem(strict=strict)
            index_problem = cache.to_problem(strict=strict)
            for index in probes.tolist():
                a = dict_problem.evaluate(space.config_at(index))
                b = index_problem.evaluate_index(index)
                assert a.to_dict() == b.to_dict(), (strict, index)

    def test_mixed_paths_share_one_memo(self):
        # A config evaluated through the dict path then the index path (or the
        # reverse) on one memoized problem must be measured exactly once, even
        # for a non-deterministic objective -- portfolios may mix adapter
        # (dict-path) and migrated (index-path) members on a shared problem.
        space = SearchSpace([Parameter("x", (1, 2, 3, 4))])
        calls = []

        def noisy(config):
            calls.append(dict(config))
            return float(len(calls))

        from repro.core.problem import TuningProblem
        problem = TuningProblem("t", space, noisy, memoize=True)
        a = problem.evaluate({"x": 2})
        b = problem.evaluate_index(space.index_of({"x": 2}))
        c = problem.evaluate({"x": 2})
        assert len(calls) == 1
        assert a.value == b.value == c.value == 1.0
        assert problem.evaluation_count == 1
        # And the reverse order, plus the batch path.
        problem.reset_cache()
        calls.clear()
        d = problem.evaluate_index(space.index_of({"x": 3}))
        e = problem.evaluate({"x": 3})
        f = problem.evaluate_indices([space.index_of({"x": 3})],
                                     valid_hint=True)[0]
        assert len(calls) == 1
        assert d.value == e.value == f.value

    def test_batch_equals_sequential(self, benchmarks, gpu_3090):
        cache = benchmarks["hotspot"].build_cache(gpu_3090, sample_size=100, seed=3)
        space = cache.space
        rng = np.random.default_rng(2)
        stored = space.indices_of_configs([dict(o.config) for o in cache])[:30]
        probes = np.concatenate([stored, rng.integers(0, space.cardinality, 30),
                                 stored[:5]])  # repeats exercise the memo
        sequential = cache.to_problem(strict=True)
        batched = cache.to_problem(strict=True)
        a = [sequential.evaluate_index(i, _valid_hint=True)
             for i in probes.tolist()]
        b = batched.evaluate_indices(probes, valid_hint=True)
        assert [o.to_dict() for o in a] == [o.to_dict() for o in b]
        assert sequential.evaluation_count == batched.evaluation_count

    def test_peek_is_side_effect_free(self, benchmarks, gpu_3090):
        cache = benchmarks["pnpoly"].build_cache(gpu_3090, sample_size=50, seed=4)
        problem = cache.to_problem()
        values, failure, raises = problem.peek_indices(np.arange(20))
        assert problem.evaluation_count == 0
        assert problem.cache_size == 0
        obs = problem.evaluate_index(int(np.arange(20)[~failure][0])
                                     if (~failure).any() else 0)
        if not obs.is_failure:
            assert obs.value == values[obs.config.space_index]


class TestTunerConvergence:
    def test_curve_from_real_tuner_runs(self, pnpoly_cache_3090):
        from repro.analysis.convergence import tuner_convergence

        curve = tuner_convergence(pnpoly_cache_3090, lambda: LocalSearch(),
                                  repetitions=5, budget=30, base_seed=3)
        assert curve.evaluations.tolist() == list(range(1, 31))
        assert curve.median_relative_performance.shape == (30,)
        # Best-so-far relative performance is monotone non-decreasing and <= 1.
        diffs = np.diff(curve.median_relative_performance)
        assert (diffs >= -1e-12).all()
        assert curve.median_relative_performance.max() <= 1.0 + 1e-12
        # Deterministic given the base seed.
        again = tuner_convergence(pnpoly_cache_3090, lambda: LocalSearch(),
                                  repetitions=5, budget=30, base_seed=3)
        assert np.array_equal(curve.median_relative_performance,
                              again.median_relative_performance)


class TestIndexRunAccounting:
    def test_bulk_budget_matches_sequential(self, benchmarks, gpu_3090):
        cache = benchmarks["pnpoly"].build_cache(gpu_3090, sample_size=200, seed=6)
        space = cache.space
        indices = space.indices_of_configs([dict(o.config) for o in cache])[:50]
        indices = np.concatenate([indices, indices[:10]])  # duplicates

        def run():
            tuner = RandomSearch(seed=0)
            budget = Budget(max_evaluations=40)
            tuner._problem = cache.to_problem()
            tuner._budget = budget
            tuner._result = TuningResult()
            tuner._seen = set()
            tuner._track = [None, math.inf]
            return tuner, budget

        bulk_tuner, bulk_budget = run()
        bulk_obs = bulk_tuner.evaluate_index_run(indices)
        seq_tuner, seq_budget = run()
        seq_obs = []
        for i in indices:
            obs = seq_tuner.evaluate_index(i, valid_hint=True)
            if obs is None:
                break
            seq_obs.append(obs)
        assert len(bulk_obs) == len(seq_obs) == 40  # truncated by the budget
        assert [o.to_dict() for o in bulk_obs] == [o.to_dict() for o in seq_obs]
        assert bulk_budget.to_dict() == seq_budget.to_dict()
        assert bulk_tuner._seen == seq_tuner._seen
        assert bulk_tuner._track == seq_tuner._track

    def test_charge_bulk_equals_repeated_charges(self):
        a = Budget(max_evaluations=10)
        b = Budget(max_evaluations=10)
        seconds = [0.1, 2.0, 0.0]
        for value in seconds:
            a.charge(simulated_seconds=value, new_config=True)
        # The list form reproduces the sequential accumulation order bit for bit.
        b.charge_bulk(3, simulated_seconds=seconds, new_configs=3)
        assert a.to_dict() == b.to_dict()
        exhausted = Budget(max_evaluations=0)
        with pytest.raises(BudgetExhaustedError):
            exhausted.charge_bulk(1)
