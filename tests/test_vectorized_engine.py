"""Equivalence tests for the columnar index engine.

The vectorized paths (batch mixed-radix codecs, compiled constraint masks, batched
sampling, index-arithmetic FFG construction) must be drop-in replacements for the
scalar implementations: every test here asserts element-wise agreement between the two
on all registered kernel spaces, the contract the analysis layer's reproducibility
rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constraints import Constraint, ConstraintSet
from repro.core.errors import EmptySearchSpaceError
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.graph.ffg import build_ffg
from repro.graph.pagerank import pagerank

KERNEL_NAMES = ("pnpoly", "nbody", "convolution", "gemm", "expdist", "hotspot",
                "dedispersion")

N_RANDOM = 1000


@pytest.fixture(scope="module", params=KERNEL_NAMES)
def kernel_space(request, benchmarks):
    return benchmarks[request.param].space


@pytest.fixture(scope="module")
def random_indices(kernel_space):
    rng = np.random.default_rng(20230711)
    return rng.integers(0, kernel_space.cardinality, size=N_RANDOM)


class TestBatchCodecs:
    def test_digits_round_trip(self, kernel_space, random_indices):
        digits = kernel_space.indices_to_digits(random_indices)
        assert digits.shape == (N_RANDOM, kernel_space.dimensions)
        np.testing.assert_array_equal(
            kernel_space.digits_to_indices(digits), random_indices)

    def test_configs_at_matches_scalar_config_at(self, kernel_space, random_indices):
        batch = kernel_space.configs_at(random_indices)
        for i in (0, 1, 17, 500, N_RANDOM - 1):
            assert batch[i] == kernel_space.config_at(int(random_indices[i]))

    def test_indices_of_configs_matches_scalar_index_of(self, kernel_space,
                                                        random_indices):
        configs = kernel_space.configs_at(random_indices)
        np.testing.assert_array_equal(
            kernel_space.indices_of_configs(configs), random_indices)
        for i in (0, 42, N_RANDOM - 1):
            assert kernel_space.index_of(configs[i]) == int(random_indices[i])

    def test_configs_hold_native_python_values(self, kernel_space, random_indices):
        config = kernel_space.configs_at(random_indices[:1])[0]
        for parameter in kernel_space.parameters:
            assert type(config[parameter.name]) is type(parameter.values[0])


class TestSatisfiedMask:
    def test_mask_agrees_with_scalar_elementwise(self, kernel_space, random_indices):
        mask = kernel_space.satisfied_mask(random_indices)
        configs = kernel_space.configs_at(random_indices)
        scalar = np.fromiter(
            (kernel_space.constraints.is_satisfied(c) for c in configs),
            dtype=bool, count=N_RANDOM)
        np.testing.assert_array_equal(mask, scalar)

    def test_every_kernel_constraint_is_vectorized(self, kernel_space):
        # The suite's restriction lists all live inside the vectorizable subset; a
        # regression here silently degrades every hot path to the scalar fallback.
        for constraint in kernel_space.constraints:
            assert constraint.is_vectorized, constraint.expression

    def test_opaque_callable_falls_back_to_scalar(self):
        space = SearchSpace(
            [Parameter("a", (1, 2, 3, 4)), Parameter("b", (1, 2, 3, 4))],
            ConstraintSet([lambda c: c["a"] * c["b"] <= 6, "a != 3"]))
        idx = np.arange(space.cardinality)
        mask = space.satisfied_mask(idx)
        scalar = [space.constraints.is_satisfied(c) for c in space.configs_at(idx)]
        np.testing.assert_array_equal(mask, scalar)

    def test_division_by_zero_counts_as_violated(self):
        space = SearchSpace(
            [Parameter("x", (0, 1, 2, 4)), Parameter("y", (0, 2, 4))],
            ConstraintSet(["y % x == 0"]))
        idx = np.arange(space.cardinality)
        mask = space.satisfied_mask(idx)
        scalar = [space.constraints.is_satisfied(c) for c in space.configs_at(idx)]
        np.testing.assert_array_equal(mask, scalar)
        assert not mask[: space.parameter("y").cardinality].any()  # x == 0 rows

    def test_or_short_circuit_shields_failing_operand(self):
        # "x == 0 or y % x == 0": for x == 0 the scalar path never evaluates the
        # division, so those rows are satisfied, not poisoned.
        space = SearchSpace(
            [Parameter("x", (0, 1, 2, 3)), Parameter("y", (0, 2, 4))],
            ConstraintSet(["x == 0 or y % x == 0"]))
        idx = np.arange(space.cardinality)
        mask = space.satisfied_mask(idx)
        scalar = [space.constraints.is_satisfied(c) for c in space.configs_at(idx)]
        np.testing.assert_array_equal(mask, scalar)
        assert mask[: space.parameter("y").cardinality].all()

    def test_ternary_matches_scalar_including_branch_failures(self):
        # "y % x == 0 if x > 0 else y == 0": the scalar path never evaluates the
        # division on the x == 0 rows, so those rows must not be poisoned.
        space = SearchSpace(
            [Parameter("x", (0, 1, 2, 3)), Parameter("y", (0, 2, 4))],
            ConstraintSet(["y % x == 0 if x > 0 else y == 0"]))
        idx = np.arange(space.cardinality)
        mask = space.satisfied_mask(idx)
        scalar = [space.constraints.is_satisfied(c) for c in space.configs_at(idx)]
        np.testing.assert_array_equal(mask, scalar)
        assert space.constraints[0].is_vectorized

    def test_ternary_value_branches(self):
        # Ternary producing values (not booleans), consumed by a comparison.
        space = SearchSpace(
            [Parameter("x", (1, 2, 4)), Parameter("y", (1, 2, 4, 8))],
            ConstraintSet(["(x if x > y else y) <= 4"]))
        idx = np.arange(space.cardinality)
        scalar = [space.constraints.is_satisfied(c) for c in space.configs_at(idx)]
        np.testing.assert_array_equal(space.satisfied_mask(idx), scalar)
        assert space.constraints[0].is_vectorized

    @pytest.mark.parametrize("expression", [
        "x in (1, 2, 4)",
        "x not in (0, 3)",
        "y in [2, 4]",
        "x in (1, 'mixed', 4)",
        "x in (2,) or y in (0, 4)",
    ])
    def test_membership_over_literal_tuples_matches_scalar(self, expression):
        space = SearchSpace(
            [Parameter("x", (0, 1, 2, 3, 4)), Parameter("y", (0, 2, 4))],
            ConstraintSet([expression]))
        assert space.constraints[0].is_vectorized, expression
        idx = np.arange(space.cardinality)
        scalar = [space.constraints.is_satisfied(c) for c in space.configs_at(idx)]
        np.testing.assert_array_equal(space.satisfied_mask(idx), scalar)

    @pytest.mark.parametrize("expression", [
        "x in y",              # non-literal container
        "x in (1, y)",         # container with a non-constant element
    ])
    def test_unsupported_membership_falls_back_to_scalar(self, expression):
        constraint = Constraint(expression)
        assert not constraint.is_vectorized
        # The scalar fallback still decides validity (here: y is not iterable ->
        # raises -> violated; the set never becomes silently wrong).
        space = SearchSpace(
            [Parameter("x", (0, 1, 2)), Parameter("y", (0, 2))],
            ConstraintSet([expression]))
        idx = np.arange(space.cardinality)
        scalar = [space.constraints.is_satisfied(c) for c in space.configs_at(idx)]
        np.testing.assert_array_equal(space.satisfied_mask(idx), scalar)

    def test_constraint_compiled_once_at_construction(self):
        constraint = Constraint("a % b == 0")
        assert constraint._compiled is not None
        assert constraint.is_vectorized
        columns = {"a": np.array([4, 5, 6]), "b": np.array([2, 2, 2])}
        np.testing.assert_array_equal(
            constraint.satisfied_mask(columns, 3), [True, False, True])


class TestSampling:
    def _sample_reference(self, space, n, seed):
        """The seed repository's scalar rejection-sampling loop, verbatim."""
        rng = np.random.default_rng(seed)
        out, seen, attempts = [], set(), 0
        max_attempts = max(200 * n, 1000)
        while len(out) < n:
            attempts += 1
            assert attempts <= max_attempts
            idx = int(rng.integers(0, space.cardinality))
            if idx in seen:
                continue
            config = space.config_at(idx)
            if not space.constraints.is_satisfied(config):
                continue
            seen.add(idx)
            out.append(config)
        return out, rng

    @pytest.mark.parametrize("seed", [0, 7, 2023])
    def test_sample_matches_seed_implementation(self, kernel_space, seed):
        n = 50
        new = kernel_space.sample(n, rng=seed, valid_only=True, unique=True)
        ref, _ = self._sample_reference(kernel_space, n, seed)
        assert new == ref

    def test_sample_preserves_generator_stream(self, kernel_space):
        rng_new = np.random.default_rng(99)
        new = kernel_space.sample(30, rng=rng_new)
        ref, rng_ref = self._sample_reference(kernel_space, 30, 99)
        assert new == ref
        # A generator shared with the caller must end up at the same position.
        assert int(rng_new.integers(0, 2**62)) == int(rng_ref.integers(0, 2**62))

    def test_memoized_feasible_set_prevents_sampling_pathology(self):
        # Only 4 of 64 points are feasible; the seed implementation's rejection loop
        # raised EmptySearchSpaceError for draws close to the feasible count.
        space = SearchSpace(
            [Parameter("a", tuple(range(8))), Parameter("b", tuple(range(8)))],
            ConstraintSet(["a == b", "a < 4"]))
        feasible = space.feasible_indices()
        assert feasible is not None and feasible.size == 4
        configs = space.sample(4, rng=0, valid_only=True, unique=True,
                               max_attempts_factor=2)
        assert len({tuple(sorted(c.items())) for c in configs}) == 4

    def test_pathology_fix_needs_no_priming(self):
        # The memo is computed on demand when rejection patience runs out, so even a
        # fresh space below the threshold can never spuriously fail.
        space = SearchSpace(
            [Parameter("a", tuple(range(8))), Parameter("b", tuple(range(8)))],
            ConstraintSet(["a == b", "a < 4"]))
        assert space._feasible is None
        configs = space.sample(4, rng=0, valid_only=True, unique=True,
                               max_attempts_factor=2)
        assert len(configs) == 4

    def test_infeasible_request_fails_fast_with_feasible_fraction(self):
        space = SearchSpace(
            [Parameter("a", tuple(range(8))), Parameter("b", tuple(range(8)))],
            ConstraintSet(["a == b", "a < 4"]))
        space.feasible_indices()
        with pytest.raises(EmptySearchSpaceError, match="feasible fraction"):
            space.sample(5, rng=0, valid_only=True, unique=True)


class TestVectorizedFFG:
    def test_vector_and_scalar_builds_are_identical(self, benchmarks, gpu_3090):
        cache = benchmarks["pnpoly"].build_cache(gpu_3090, sample_size=600, seed=11)
        vec = build_ffg(cache, method="vector")
        scalar = build_ffg(cache, method="scalar")
        assert vec.num_nodes == scalar.num_nodes
        assert vec.num_edges == scalar.num_edges
        assert (vec.adjacency != scalar.adjacency).nnz == 0
        np.testing.assert_array_equal(vec.fitness, scalar.fitness)

    def test_pagerank_accepts_raw_csr_arrays(self, benchmarks, gpu_3090):
        cache = benchmarks["nbody"].build_cache(gpu_3090, sample_size=400, seed=5)
        graph = build_ffg(cache)
        np.testing.assert_allclose(pagerank(graph.csr_arrays()),
                                   pagerank(graph.adjacency), atol=1e-12)
