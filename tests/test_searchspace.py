"""Unit and property tests for repro.core.searchspace."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import EmptySearchSpaceError, InvalidConfigurationError
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace, config_key


class TestBasics:
    def test_cardinality_is_product(self, small_space):
        assert small_space.cardinality == 4 * 3 * 4 * 2
        assert len(small_space) == small_space.cardinality
        assert small_space.dimensions == 4

    def test_duplicate_parameter_names_rejected(self):
        with pytest.raises(InvalidConfigurationError):
            SearchSpace([Parameter("a", (1, 2)), Parameter("a", (3, 4))])

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(EmptySearchSpaceError):
            SearchSpace([])

    def test_parameter_lookup(self, small_space):
        assert small_space.parameter("block").cardinality == 4
        with pytest.raises(InvalidConfigurationError):
            small_space.parameter("nonexistent")

    def test_default_configuration_is_member(self, small_space):
        default = small_space.default_configuration()
        small_space.validate_membership(default)


class TestIndexing:
    def test_round_trip_all_indices(self, small_space):
        for idx in range(small_space.cardinality):
            config = small_space.config_at(idx)
            assert small_space.index_of(config) == idx

    def test_index_out_of_range(self, small_space):
        with pytest.raises(InvalidConfigurationError):
            small_space.config_at(small_space.cardinality)
        with pytest.raises(InvalidConfigurationError):
            small_space.config_at(-1)

    def test_indices_to_configs(self, small_space):
        configs = small_space.indices_to_configs([0, 1, 2])
        assert len(configs) == 3
        assert configs[0] != configs[1]


class TestValidation:
    def test_membership_errors(self, small_space):
        config = small_space.config_at(0)
        missing = dict(config)
        missing.pop("block")
        with pytest.raises(InvalidConfigurationError):
            small_space.validate_membership(missing)
        extra = dict(config, unknown=1)
        with pytest.raises(InvalidConfigurationError):
            small_space.validate_membership(extra)
        wrong_value = dict(config, block=999)
        with pytest.raises(InvalidConfigurationError):
            small_space.validate_membership(wrong_value)

    def test_is_valid_applies_constraints(self, small_space):
        valid = {"block": 32, "tile": 4, "vector": 8, "cache": 1}
        invalid = {"block": 256, "tile": 4, "vector": 8, "cache": 1}  # 256*4 > 512
        assert small_space.is_valid(valid)
        assert not small_space.is_valid(invalid)
        assert valid in small_space
        assert invalid not in small_space


class TestEnumerationAndCounting:
    def test_enumerate_valid_only(self, small_space):
        valid = list(small_space.enumerate(valid_only=True))
        everything = list(small_space.enumerate_all())
        assert len(everything) == small_space.cardinality
        assert 0 < len(valid) < len(everything)
        assert all(small_space.is_valid(c) for c in valid)

    def test_count_constrained_matches_enumeration(self, small_space):
        exact = small_space.count_constrained()
        assert exact == sum(1 for _ in small_space.enumerate(valid_only=True))

    def test_count_constrained_estimate_close(self, small_space):
        exact = small_space.count_constrained()
        estimate = small_space.count_constrained(limit=20)
        # With cardinality 96 and limit 20 the estimate is coarse but the same order.
        assert 0 < estimate < small_space.cardinality
        assert abs(estimate - exact) < small_space.cardinality / 2

    def test_unconstrained_count_is_cardinality(self):
        space = SearchSpace([Parameter("a", (1, 2, 3))])
        assert space.count_constrained() == 3


class TestSampling:
    def test_sample_unique_and_valid(self, small_space, rng):
        configs = small_space.sample(20, rng=rng, valid_only=True, unique=True)
        assert len(configs) == 20
        keys = {config_key(c) for c in configs}
        assert len(keys) == 20
        assert all(small_space.is_valid(c) for c in configs)

    def test_sample_reproducible(self, small_space):
        a = small_space.sample(10, rng=5)
        b = small_space.sample(10, rng=5)
        assert a == b

    def test_sample_zero(self, small_space):
        assert small_space.sample(0) == []

    def test_sample_negative_raises(self, small_space):
        with pytest.raises(InvalidConfigurationError):
            small_space.sample(-1)

    def test_sample_too_many_unique_raises(self):
        space = SearchSpace([Parameter("a", (1, 2))])
        with pytest.raises(EmptySearchSpaceError):
            space.sample(5, rng=0, unique=True, max_attempts_factor=10)


class TestNeighborhoods:
    def test_hamming_neighbors_differ_in_one_parameter(self, small_space):
        config = {"block": 64, "tile": 2, "vector": 2, "cache": 0}
        for neighbor in small_space.neighbors(config, strategy="hamming"):
            diffs = [k for k in config if config[k] != neighbor[k]]
            assert len(diffs) == 1

    def test_adjacent_is_subset_of_hamming(self, small_space):
        config = {"block": 64, "tile": 2, "vector": 2, "cache": 0}
        hamming = {config_key(n) for n in small_space.neighbors(config, "hamming")}
        adjacent = {config_key(n) for n in small_space.neighbors(config, "adjacent")}
        assert adjacent <= hamming
        assert len(adjacent) < len(hamming)

    def test_neighbors_respect_constraints(self, small_space):
        config = {"block": 128, "tile": 4, "vector": 8, "cache": 0}
        for neighbor in small_space.neighbors(config, valid_only=True):
            assert small_space.is_valid(neighbor)

    def test_unknown_strategy_raises(self, small_space):
        config = small_space.default_configuration()
        with pytest.raises(InvalidConfigurationError):
            small_space.neighbors(config, strategy="bogus")

    def test_random_neighbor(self, small_space, rng):
        config = {"block": 64, "tile": 2, "vector": 2, "cache": 0}
        neighbor = small_space.random_neighbor(config, rng)
        assert neighbor is not None
        assert neighbor != config


class TestReduction:
    def test_reduced_keeps_only_selected(self, small_space):
        reduced = small_space.reduced(["block", "tile"])
        assert reduced.parameter_names == ("block", "tile")
        assert reduced.cardinality == 12

    def test_reduced_constraints_use_fixed_values(self, small_space):
        # Freeze vector=8; the constraint "vector <= tile * 4" then requires tile >= 2.
        reduced = small_space.reduced(["block", "tile"], fixed={"vector": 8, "cache": 0})
        assert not reduced.is_valid({"block": 32, "tile": 1})
        assert reduced.is_valid({"block": 32, "tile": 2})

    def test_reduced_unknown_parameter(self, small_space):
        with pytest.raises(InvalidConfigurationError):
            small_space.reduced(["nope"])

    def test_reduced_empty_keep(self, small_space):
        with pytest.raises(EmptySearchSpaceError):
            small_space.reduced([])


class TestEncoding:
    def test_encode_batch_matches_encode(self, small_space, rng):
        configs = small_space.sample(8, rng=rng)
        batch = small_space.encode_batch(configs)
        assert batch.shape == (8, small_space.dimensions)
        for i, c in enumerate(configs):
            np.testing.assert_allclose(batch[i], small_space.encode(c))

    def test_decode_inverts_encode(self, small_space, rng):
        for config in small_space.sample(10, rng=rng):
            decoded = small_space.decode(small_space.encode(config))
            assert decoded == config

    def test_decode_wrong_length(self, small_space):
        with pytest.raises(InvalidConfigurationError):
            small_space.decode([1.0, 2.0])


class TestSerialization:
    def test_round_trip(self, small_space):
        restored = SearchSpace.from_dict(small_space.to_dict())
        assert restored.parameter_names == small_space.parameter_names
        assert restored.cardinality == small_space.cardinality
        sample = {"block": 32, "tile": 4, "vector": 8, "cache": 1}
        assert restored.is_valid(sample) == small_space.is_valid(sample)


# --------------------------------------------------------------------------- property


@st.composite
def _spaces(draw):
    n_params = draw(st.integers(min_value=1, max_value=4))
    params = []
    for i in range(n_params):
        n_values = draw(st.integers(min_value=1, max_value=5))
        params.append(Parameter(f"p{i}", tuple(range(n_values))))
    return SearchSpace(params)


@given(space=_spaces(), data=st.data())
@settings(max_examples=50, deadline=None)
def test_property_index_config_bijection(space, data):
    """config_at / index_of form a bijection over [0, cardinality)."""
    idx = data.draw(st.integers(min_value=0, max_value=space.cardinality - 1))
    config = space.config_at(idx)
    assert space.index_of(config) == idx


@given(space=_spaces(), data=st.data())
@settings(max_examples=30, deadline=None)
def test_property_hamming_neighbors_symmetry(space, data):
    """If B is a Hamming-1 neighbour of A then A is a Hamming-1 neighbour of B."""
    idx = data.draw(st.integers(min_value=0, max_value=space.cardinality - 1))
    config = space.config_at(idx)
    for neighbor in space.neighbors(config, strategy="hamming", valid_only=False):
        back = space.neighbors(neighbor, strategy="hamming", valid_only=False)
        assert any(config_key(b) == config_key(config) for b in back)
