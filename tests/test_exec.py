"""Tests for the campaign-execution subsystem (:mod:`repro.exec`).

The subsystem's load-bearing contract is *byte identity*: any executor, over any
shard plan, interrupted or not, must merge to exactly the caches the serial
reference produces -- same configurations, same order, same values, same error
strings, same serialized JSON.  Every test here ultimately asserts that.
"""

from __future__ import annotations

import io
import json
import os

import numpy as np
import pytest

from repro.analysis.campaign import Campaign
from repro.core.budget import Budget
from repro.core.errors import ReproError, SerializationError
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.core.runner import run_matrix
from repro.exec import (
    MEMOIZE_THRESHOLD_ENV,
    CampaignPlan,
    CheckpointStore,
    ParallelExecutor,
    SerialExecutor,
    ShardPlanner,
    resolve_memoize_threshold,
    resume_campaign,
)
from repro.exec.cli import main as exec_main
from repro.tuners.base import Tuner

KERNEL_NAMES = ("pnpoly", "nbody", "convolution", "gemm", "expdist", "hotspot",
                "dedispersion")

#: Small enough for fast tests, large enough that every unit splits into shards.
SAMPLE_N = 150
SHARD_SIZE = 40
EXHAUSTIVE_LIMIT = 5_000


def cache_bytes(cache) -> str:
    """Canonical serialized form used for byte-identity assertions."""
    return json.dumps(cache.to_dict())


@pytest.fixture(scope="module")
def planner(benchmarks, gpus):
    selected = {"RTX_3090": gpus["RTX_3090"]}
    return ShardPlanner(benchmarks, selected, sample_size=SAMPLE_N,
                        exhaustive_limit=EXHAUSTIVE_LIMIT, seed=99,
                        shard_size=SHARD_SIZE)


@pytest.fixture(scope="module")
def serial_caches(planner):
    """Reference output: the full plan through the SerialExecutor, built once."""
    return SerialExecutor().run(planner.plan(), benchmarks=planner.benchmarks,
                                gpus=planner.gpus)


class TestShardPlanner:
    def test_plan_is_deterministic(self, benchmarks, gpus):
        def make():
            return ShardPlanner(benchmarks, gpus, sample_size=SAMPLE_N,
                                exhaustive_limit=EXHAUSTIVE_LIMIT, seed=99,
                                shard_size=SHARD_SIZE).plan()
        assert make().to_dict() == make().to_dict()

    def test_plan_round_trips_through_json(self, planner):
        plan = planner.plan()
        restored = CampaignPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan

    def test_shards_partition_each_unit(self, planner):
        plan = planner.plan()
        for unit in plan.units:
            shards = plan.shards_of(unit)
            assert shards[0].start == 0
            assert shards[-1].stop == unit.n_configs
            for a, b in zip(shards, shards[1:]):
                assert a.stop == b.start
            assert all(s.n_configs <= SHARD_SIZE for s in shards)

    def test_paper_design_decisions(self, planner):
        # The three huge spaces are always sampled; pnpoly fits under the
        # exhaustive limit and is enumerated.
        assert planner.is_sampled("hotspot")
        assert planner.is_sampled("dedispersion")
        assert planner.is_sampled("expdist")
        assert not planner.is_sampled("pnpoly")
        unit = planner.unit_for("pnpoly", "RTX_3090")
        assert unit.exhaustive and unit.n_configs == 4_092

    def test_per_gpu_seeds_follow_sorted_order(self, benchmarks, gpus):
        planner = ShardPlanner(benchmarks, gpus, seed=10)
        seeds = {g: planner.unit_seed(g) for g in gpus}
        assert seeds == {g: 10 + i for i, g in enumerate(sorted(gpus))}

    def test_sampled_unit_indices_match_space_sampling(self, planner, benchmarks):
        unit = planner.unit_for("hotspot", "RTX_3090")
        np.testing.assert_array_equal(
            planner.unit_indices(unit),
            benchmarks["hotspot"].space.sample_indices(SAMPLE_N, rng=unit.seed,
                                                       valid_only=True, unique=True))


class TestSerialExecutor:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_byte_identical_to_build_cache(self, planner, serial_caches,
                                           benchmarks, gpus, name):
        unit = planner.unit_for(name, "RTX_3090")
        reference = benchmarks[name].build_cache(
            gpus["RTX_3090"], sample_size=unit.sample_size, seed=unit.seed)
        assert cache_bytes(serial_caches[(name, "RTX_3090")]) == cache_bytes(reference)


class TestParallelExecutor:
    def test_byte_identical_to_serial_on_every_kernel_space(self, planner,
                                                            serial_caches):
        # One pool, all seven kernel spaces: the acceptance criterion of the
        # subsystem.  Shards complete out of order; the merge must not care.
        parallel = ParallelExecutor(workers=4).run(
            planner.plan(), benchmarks=planner.benchmarks, gpus=planner.gpus)
        assert set(parallel) == set(serial_caches)
        for key in serial_caches:
            assert cache_bytes(parallel[key]) == cache_bytes(serial_caches[key]), key

    def test_rejects_non_registry_benchmarks(self, gpus):
        space = SearchSpace([Parameter("x", (1, 2))], name="custom")

        class FakeBenchmark:
            def __init__(self):
                self.space = space

        planner = ShardPlanner({"custom": FakeBenchmark()},
                               {"RTX_3090": gpus["RTX_3090"]}, sample_size=2,
                               sampled_benchmarks=frozenset({"custom"}))
        with pytest.raises(ReproError, match="registry"):
            ParallelExecutor(workers=2).run(planner.plan(),
                                            benchmarks=planner.benchmarks,
                                            gpus=planner.gpus)

    def test_rejects_custom_workload_under_registry_name(self, gpus):
        # A custom workload under a registry name would be silently replaced by
        # the default rebuild in every worker; the mismatch must be refused.
        from repro.kernels import all_benchmarks

        custom = {"hotspot": all_benchmarks(hotspot={"grid_size": 64})["hotspot"]}
        planner = ShardPlanner(custom, {"RTX_3090": gpus["RTX_3090"]},
                               sample_size=4)
        with pytest.raises(ReproError, match="workload_overrides"):
            ParallelExecutor(workers=2).run(planner.plan(),
                                            benchmarks=planner.benchmarks,
                                            gpus=planner.gpus)
        # With matching overrides the same plan runs (and matches serial).
        executor = ParallelExecutor(workers=2,
                                    workload_overrides={"hotspot": {"grid_size": 64}})
        parallel = executor.run(planner.plan(), benchmarks=planner.benchmarks,
                                gpus=planner.gpus)
        serial = SerialExecutor().run(planner.plan(), benchmarks=planner.benchmarks,
                                      gpus=planner.gpus)
        key = ("hotspot", "RTX_3090")
        assert cache_bytes(parallel[key]) == cache_bytes(serial[key])

    def test_rejects_invalid_worker_count(self):
        with pytest.raises(ReproError):
            ParallelExecutor(workers=0)


class _MustNotEvaluate(SerialExecutor):
    """Executor that fails the test if any shard actually needs evaluating."""

    def _run_shards(self, tasks, on_complete):
        raise AssertionError(f"{len(tasks)} shards were re-evaluated on resume")


class TestCheckpointResume:
    @pytest.fixture()
    def small_planner(self, benchmarks, gpus):
        return ShardPlanner({"hotspot": benchmarks["hotspot"]},
                            {"RTX_3090": gpus["RTX_3090"]},
                            sample_size=SAMPLE_N, seed=5, shard_size=SHARD_SIZE)

    def test_interrupted_parallel_run_resumes_byte_identical(self, small_planner,
                                                             tmp_path):
        plan = small_planner.plan()
        store = CheckpointStore(tmp_path / "ckpt")
        parallel = ParallelExecutor(workers=2).run(
            plan, benchmarks=small_planner.benchmarks, gpus=small_planner.gpus,
            checkpoint=store)
        # Simulate a mid-campaign kill: drop some completed shards.  Atomic
        # fragment writes guarantee the survivors are complete files.
        dropped = [s for s in plan.shards if s.shard_id % 2 == 1]
        assert dropped
        for shard in dropped:
            os.unlink(store.fragment_path(shard))
        status = store.status(plan)
        assert status["shards_completed"] == len(plan.shards) - len(dropped)

        resumed = resume_campaign(store, executor=ParallelExecutor(workers=2),
                                  benchmarks=small_planner.benchmarks,
                                  gpus=small_planner.gpus)
        uninterrupted = SerialExecutor().run(plan,
                                             benchmarks=small_planner.benchmarks,
                                             gpus=small_planner.gpus)
        key = ("hotspot", "RTX_3090")
        assert cache_bytes(resumed[key]) == cache_bytes(uninterrupted[key])
        assert cache_bytes(parallel[key]) == cache_bytes(uninterrupted[key])

    def test_complete_checkpoint_resumes_without_reevaluating(self, small_planner,
                                                              tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        reference = SerialExecutor().run(small_planner.plan(),
                                         benchmarks=small_planner.benchmarks,
                                         gpus=small_planner.gpus, checkpoint=store)
        resumed = resume_campaign(store, executor=_MustNotEvaluate(),
                                  benchmarks=small_planner.benchmarks,
                                  gpus=small_planner.gpus)
        key = ("hotspot", "RTX_3090")
        assert cache_bytes(resumed[key]) == cache_bytes(reference[key])

    def test_checkpoint_refuses_foreign_plan(self, small_planner, benchmarks,
                                             gpus, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.initialize(small_planner.plan())
        other = ShardPlanner({"pnpoly": benchmarks["pnpoly"]},
                             {"RTX_3090": gpus["RTX_3090"]},
                             shard_size=SHARD_SIZE)
        with pytest.raises(SerializationError, match="different"):
            SerialExecutor().run(other.plan(), benchmarks=other.benchmarks,
                                 gpus=other.gpus, checkpoint=store)

    def test_resume_refuses_diverged_benchmark_definition(self, benchmarks, gpus,
                                                          tmp_path):
        # Fragments evaluated against a custom-workload benchmark must not merge
        # with the default registry definition (or vice versa): the manifest pins
        # a space+workload fingerprint per benchmark.
        from repro.kernels import all_benchmarks

        selected_g = {"RTX_3090": gpus["RTX_3090"]}
        custom = {"hotspot": all_benchmarks(hotspot={"grid_size": 64})["hotspot"]}
        planner = ShardPlanner(custom, selected_g, sample_size=20, shard_size=10)
        store = CheckpointStore(tmp_path / "ckpt")
        SerialExecutor().run(planner.plan(), benchmarks=custom, gpus=selected_g,
                             checkpoint=store)
        with pytest.raises(SerializationError, match="different definitions"):
            resume_campaign(store, executor=SerialExecutor(),
                            benchmarks={"hotspot": benchmarks["hotspot"]},
                            gpus=selected_g)

    def test_fragment_row_count_is_validated(self, small_planner, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        plan = small_planner.plan()
        shard = plan.shards[0]
        with pytest.raises(SerializationError, match="rows"):
            store.save_shard(shard, [(1.0, True, "")])  # wrong length


class TestExecCLI:
    def run_cli(self, *argv) -> tuple[int, str]:
        out = io.StringIO()
        code = exec_main(list(argv), out=out)
        return code, out.getvalue()

    def test_plan_prints_units_and_totals(self):
        code, text = self.run_cli("plan", "--benchmarks", "pnpoly,hotspot",
                                  "--gpus", "RTX_3090", "--sample-size", "100")
        assert code == 0
        assert "pnpoly" in text and "exhaustive" in text
        assert "sampled(100)" in text
        assert "shards" in text

    def test_plan_rejects_unknown_names(self):
        code, text = self.run_cli("plan", "--benchmarks", "warp_drive")
        assert code == 2
        assert "unknown benchmarks" in text

    def test_run_status_resume_round_trip(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        outdir = str(tmp_path / "caches")
        code, text = self.run_cli(
            "run", "--benchmarks", "hotspot", "--gpus", "RTX_3090",
            "--sample-size", "120", "--shard-size", "50", "--workers", "1",
            "--checkpoint-dir", ckpt, "--output-dir", outdir, "--quiet")
        assert code == 0, text
        assert "hotspot/RTX_3090: 120 entries" in text
        first = (tmp_path / "caches" / "hotspot_RTX_3090.json").read_bytes()

        code, text = self.run_cli("status", "--checkpoint-dir", ckpt)
        assert code == 0
        assert "3/3" in text

        # Drop a fragment, resume, and the rewritten cache is byte-identical.
        os.unlink(tmp_path / "ckpt" / "shard_00001.json")
        code, text = self.run_cli("resume", "--checkpoint-dir", ckpt,
                                  "--output-dir", outdir, "--quiet")
        assert code == 0, text
        assert (tmp_path / "caches" / "hotspot_RTX_3090.json").read_bytes() == first

    def test_status_without_manifest(self, tmp_path):
        code, text = self.run_cli("status", "--checkpoint-dir",
                                  str(tmp_path / "nothing"))
        assert code == 1
        assert "no manifest" in text


class TestMemoizeThresholdConfig:
    def test_explicit_beats_environment(self, monkeypatch):
        monkeypatch.setenv(MEMOIZE_THRESHOLD_ENV, "123")
        assert resolve_memoize_threshold(456) == 456
        assert resolve_memoize_threshold(None) == 123

    def test_unset_environment_keeps_default(self, monkeypatch):
        monkeypatch.delenv(MEMOIZE_THRESHOLD_ENV, raising=False)
        assert resolve_memoize_threshold(None) is None

    def test_garbage_environment_raises(self, monkeypatch):
        monkeypatch.setenv(MEMOIZE_THRESHOLD_ENV, "lots")
        with pytest.raises(ReproError, match=MEMOIZE_THRESHOLD_ENV):
            resolve_memoize_threshold(None)

    def test_executor_applies_threshold_to_spaces(self, monkeypatch):
        from repro.kernels import all_benchmarks

        monkeypatch.setenv(MEMOIZE_THRESHOLD_ENV, "17")
        benchmarks = all_benchmarks()  # fresh spaces, not the session fixture
        from repro.gpus.specs import all_gpus
        gpus = {"RTX_3090": all_gpus()["RTX_3090"]}
        planner = ShardPlanner({"pnpoly": benchmarks["pnpoly"]}, gpus,
                               exhaustive_limit=EXHAUSTIVE_LIMIT)
        SerialExecutor().run(planner.plan(), benchmarks=planner.benchmarks,
                             gpus=planner.gpus)
        assert benchmarks["pnpoly"].space.memoize_threshold == 17

    def test_worker_init_applies_threshold(self):
        from repro.exec import worker

        worker.init_worker(memoize_threshold=29)
        try:
            assert all(b.space.memoize_threshold == 29
                       for b in worker._BENCHMARKS.values())
        finally:
            worker._BENCHMARKS = None
            worker._GPUS = None


class TestCampaignDelegation:
    def test_parallel_campaign_matches_serial_campaign(self, benchmarks, gpus):
        selected_b = {name: benchmarks[name] for name in ("pnpoly", "hotspot")}
        selected_g = {"RTX_3090": gpus["RTX_3090"]}
        kwargs = dict(sample_size=SAMPLE_N, exhaustive_limit=EXHAUSTIVE_LIMIT, seed=7)
        serial = Campaign(selected_b, selected_g, **kwargs)
        parallel = Campaign(selected_b, selected_g,
                            executor=ParallelExecutor(workers=2), **kwargs)
        for key, cache in serial.all_caches().items():
            assert cache_bytes(parallel.all_caches()[key]) == cache_bytes(cache)

    def test_checkpointed_campaign_builds_pairs_lazily(self, benchmarks, gpus,
                                                       tmp_path):
        # Regression: per-key plans used to collide with the stored manifest on
        # the second lazily-built pair.  With a checkpoint the campaign executes
        # its full (stable) plan, so later accesses are pure cache hits.
        selected_b = {"pnpoly": benchmarks["pnpoly"]}
        selected_g = {name: gpus[name] for name in ("RTX_3090", "RTX_3060")}
        campaign = Campaign(selected_b, selected_g,
                            exhaustive_limit=EXHAUSTIVE_LIMIT,
                            checkpoint=tmp_path / "ckpt")
        first = campaign.cache("pnpoly", "RTX_3090")
        # Laziness holds under checkpointing: only the requested unit executed.
        store = CheckpointStore(tmp_path / "ckpt")
        by_unit = {(row["benchmark"], row["gpu"]): row
                   for row in store.status()["units"]}
        assert by_unit[("pnpoly", "RTX_3090")]["shards_completed"] > 0
        assert by_unit[("pnpoly", "RTX_3060")]["shards_completed"] == 0
        second = campaign.cache("pnpoly", "RTX_3060")  # must not raise
        assert first.gpu == "RTX_3090" and second.gpu == "RTX_3060"
        reference = Campaign(selected_b, selected_g,
                             exhaustive_limit=EXHAUSTIVE_LIMIT)
        assert cache_bytes(second) == cache_bytes(
            reference.cache("pnpoly", "RTX_3060"))

    def test_campaign_checkpoint_round_trip(self, benchmarks, gpus, tmp_path):
        selected_b = {"pnpoly": benchmarks["pnpoly"]}
        selected_g = {"RTX_3090": gpus["RTX_3090"]}
        first = Campaign(selected_b, selected_g, exhaustive_limit=EXHAUSTIVE_LIMIT,
                         checkpoint=tmp_path / "ckpt")
        reference = cache_bytes(first.cache("pnpoly", "RTX_3090"))
        # A second campaign over the same checkpoint loads fragments, never models.
        second = Campaign(selected_b, selected_g, exhaustive_limit=EXHAUSTIVE_LIMIT,
                          executor=_MustNotEvaluate(), checkpoint=tmp_path / "ckpt")
        assert cache_bytes(second.cache("pnpoly", "RTX_3090")) == reference


class _ListTuner(Tuner):
    """Minimal tuner that pushes a fixed candidate list through evaluate_all."""

    name = "list-tuner"

    def __init__(self, candidates, **kwargs):
        super().__init__(**kwargs)
        self.candidates = candidates

    def _run(self, problem, budget, rng):
        self.evaluate_all(self.candidates)


class _ListTunerSlow(_ListTuner):
    """Same tuner, forced through the scalar evaluate() loop."""

    def _run(self, problem, budget, rng):
        for config in self.candidates:
            if self.evaluate(config) is None:
                break


class TestBatchEvaluatePaths:
    def test_evaluate_all_fast_path_matches_scalar_loop(self, pnpoly, gpu_3090):
        candidates = pnpoly.space.sample(40, rng=3) + [
            # An invalid (constraint-violating or out-of-space) candidate mid-batch.
            {**pnpoly.space.sample_one(rng=4), "block_size_x": 32},
        ] + pnpoly.space.sample(9, rng=5)
        fast = _ListTuner(candidates).tune(pnpoly.problem(gpu_3090),
                                           Budget(max_evaluations=30), seed=1)
        slow = _ListTunerSlow(candidates).tune(pnpoly.problem(gpu_3090),
                                               Budget(max_evaluations=30), seed=1)
        assert len(fast) == len(slow) == 30
        for a, b in zip(fast.observations, slow.observations):
            assert a.config == b.config
            assert a.value == b.value
            assert a.valid == b.valid

    def test_evaluate_all_respects_budget_subclass_exhaustion(self, pnpoly,
                                                              gpu_3090):
        # Budget subclasses may override `exhausted` (the portfolio tuner's
        # slice does); the fast path's allowance comes from the
        # affordable_evaluations protocol, which the slice answers with its own
        # cap -- the batch must stop at the slice, and every charge must reach
        # the shared parent budget.
        from repro.tuners.portfolio import _BudgetSlice

        candidates = pnpoly.space.sample(30, rng=8)
        parent = Budget(max_evaluations=50)
        tuner = _ListTuner(candidates)
        tuner._problem = pnpoly.problem(gpu_3090)
        tuner._budget = _BudgetSlice(parent, 10)
        from repro.core.result import TuningResult
        tuner._result = TuningResult()
        tuner._seen = set()
        observations = tuner.evaluate_all(candidates)
        assert len(observations) == 10  # the slice, not the 30-config batch
        assert parent.evaluations_used == 10

    def test_evaluate_many_matches_scalar_evaluate(self, pnpoly, gpu_3090):
        configs = pnpoly.space.sample(25, rng=11)
        configs.insert(5, {"bogus": 1})                      # missing parameters
        configs.insert(9, {**configs[0], "block_size_x": -3})  # value not allowed
        batch_problem = pnpoly.problem(gpu_3090)
        scalar_problem = pnpoly.problem(gpu_3090)
        batch = batch_problem.evaluate_many(configs)
        scalar = [scalar_problem.evaluate(c) for c in configs]
        for a, b in zip(batch, scalar):
            assert (a.value, a.valid, a.error) == (b.value, b.valid, b.error)
            assert a.evaluation_index == b.evaluation_index


class TestRunMatrixExecutorHook:
    def _matrix(self, pnpoly, gpu_3090, executor):
        from repro.tuners.random_search import RandomSearch

        tuners = {"random": lambda seed=None: RandomSearch(seed=seed)}
        problems = {"pnpoly": pnpoly.problem(gpu_3090)}
        return run_matrix(tuners, problems, max_evaluations=40, seed=3,
                          executor=executor)

    def test_serial_executor_hook_matches_inline(self, pnpoly, gpu_3090):
        inline = self._matrix(pnpoly, gpu_3090, executor=None)
        hooked = self._matrix(pnpoly, gpu_3090, executor=SerialExecutor())
        assert list(inline) == list(hooked)
        for key in inline:
            assert inline[key].best_value == hooked[key].best_value
            assert [o.config for o in inline[key]] == [o.config for o in hooked[key]]

    def test_thread_pool_executor_hook_matches_inline(self, pnpoly, gpu_3090):
        from concurrent.futures import ThreadPoolExecutor

        inline = self._matrix(pnpoly, gpu_3090, executor=None)
        with ThreadPoolExecutor(max_workers=2) as pool:
            hooked = self._matrix(pnpoly, gpu_3090, executor=pool)
        for key in inline:
            assert inline[key].best_value == hooked[key].best_value

    def test_process_pool_mapper_fails_loudly(self, pnpoly, gpu_3090):
        # The column runner closes over unpicklable problems; a process-pool
        # mapper must produce an actionable error, not a raw pickling traceback.
        with pytest.raises(ReproError, match="thread-based or in-process"):
            self._matrix(pnpoly, gpu_3090, executor=ParallelExecutor(workers=2))
