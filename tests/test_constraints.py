"""Unit tests for repro.core.constraints."""

from __future__ import annotations

import pytest

from repro.core.constraints import Constraint, ConstraintSet
from repro.core.errors import ConstraintViolationError, InvalidConfigurationError


class TestConstraint:
    def test_expression_satisfied(self):
        c = Constraint("block_size_x * block_size_y <= 1024")
        assert c.is_satisfied({"block_size_x": 32, "block_size_y": 32})
        assert not c.is_satisfied({"block_size_x": 64, "block_size_y": 32})

    def test_callable_constraint(self):
        c = Constraint(lambda cfg: cfg["a"] % cfg["b"] == 0)
        assert c({"a": 8, "b": 4})
        assert not c({"a": 9, "b": 4})

    def test_expression_with_builtins(self):
        c = Constraint("max(a, b) <= 16 and min(a, b) >= 2")
        assert c.is_satisfied({"a": 4, "b": 16})
        assert not c.is_satisfied({"a": 1, "b": 4})

    def test_missing_parameter_raises(self):
        # A typo'd parameter name is a programming error, not a constraint violation.
        c = Constraint("a + b > 0")
        with pytest.raises(InvalidConfigurationError):
            c.is_satisfied({"a": 1})
        c_callable = Constraint(lambda cfg: cfg["missing"] > 0)
        with pytest.raises(InvalidConfigurationError):
            c_callable.is_satisfied({"a": 1})

    def test_division_by_zero_counts_as_violation(self):
        # A constraint that blows up on a degenerate combination behaves like a
        # failed compilation, not like a crash of the tuner.
        c = Constraint("32 % (a // b) == 0")
        assert not c.is_satisfied({"a": 1, "b": 8})

    def test_rejects_empty_expression(self):
        with pytest.raises(InvalidConfigurationError):
            Constraint("   ")

    def test_rejects_wrong_type(self):
        with pytest.raises(InvalidConfigurationError):
            Constraint(42)  # type: ignore[arg-type]

    def test_serialization_round_trip(self):
        c = Constraint("a % b == 0", description="divisibility")
        d = Constraint.from_dict(c.to_dict())
        assert d.expression == c.expression
        assert d.description == "divisibility"
        assert d.is_satisfied({"a": 8, "b": 2})


class TestConstraintSet:
    def test_conjunction_semantics(self):
        cs = ConstraintSet(["a > 0", "b > 0", "a * b <= 100"])
        assert cs.is_satisfied({"a": 5, "b": 10})
        assert not cs.is_satisfied({"a": 5, "b": 30})
        assert not cs.is_satisfied({"a": -1, "b": 1})

    def test_empty_set_accepts_everything(self):
        assert ConstraintSet().is_satisfied({"anything": 1})
        assert len(ConstraintSet()) == 0

    def test_violated_lists_expressions(self):
        cs = ConstraintSet(["a > 0", "b > 0"])
        assert cs.violated({"a": -1, "b": -1}) == ("a > 0", "b > 0")
        assert cs.violated({"a": 1, "b": 1}) == ()

    def test_check_raises_with_details(self):
        cs = ConstraintSet(["a > 0"])
        with pytest.raises(ConstraintViolationError) as exc:
            cs.check({"a": -1})
        assert "a > 0" in exc.value.violated

    def test_add_accepts_strings_callables_and_constraints(self):
        cs = ConstraintSet()
        cs.add("a > 0").add(lambda cfg: cfg["a"] < 10).add(Constraint("a != 5"))
        assert len(cs) == 3
        assert cs.is_satisfied({"a": 3})
        assert not cs.is_satisfied({"a": 5})
        assert not cs.is_satisfied({"a": 50})

    def test_iteration_and_indexing(self):
        cs = ConstraintSet(["a > 0", "b > 0"])
        assert [c.expression for c in cs] == ["a > 0", "b > 0"]
        assert cs[0].expression == "a > 0"

    def test_pruning_report(self):
        cs = ConstraintSet(["a > 0", "a < 3"])
        configs = [{"a": v} for v in (-1, 0, 1, 2, 3, 4)]
        report = cs.pruning_report(configs)
        assert report["a > 0"] == 2
        assert report["a < 3"] == 2

    def test_serialization_round_trip(self):
        cs = ConstraintSet(["a % b == 0", "a <= 64"])
        restored = ConstraintSet.from_list(cs.to_list())
        assert len(restored) == 2
        assert restored.is_satisfied({"a": 64, "b": 8})
        assert not restored.is_satisfied({"a": 65, "b": 8})
