"""Unit tests for the GPU substrate: specs, occupancy, memory model, noise, perfmodel."""

from __future__ import annotations


import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import ResourceLimitError
from repro.gpus.memory import (
    MemoryTraffic,
    bank_conflict_factor,
    coalescing_efficiency,
    dram_time_ms,
    l2_reuse_factor,
    read_only_cache_factor,
    vector_access_efficiency,
)
from repro.gpus.noise import config_noise, lognormal_factor, measurement_jitter, stable_hash
from repro.gpus.occupancy import compute_occupancy
from repro.gpus.perfmodel import (
    ilp_factor,
    occupancy_throughput_factor,
    tail_effect_factor,
)
from repro.gpus.specs import RTX_2080_TI, RTX_3060, RTX_3090, RTX_TITAN, all_gpus


class TestSpecs:
    def test_catalog_contains_the_papers_four_gpus(self):
        catalog = all_gpus()
        assert set(catalog) == {"RTX_2080_Ti", "RTX_3060", "RTX_3090", "RTX_Titan"}

    def test_family_structure(self):
        assert RTX_2080_TI.is_same_family(RTX_TITAN)
        assert RTX_3060.is_same_family(RTX_3090)
        assert not RTX_2080_TI.is_same_family(RTX_3090)

    def test_derived_quantities(self):
        assert RTX_3090.total_cores == 82 * 128
        assert RTX_2080_TI.max_warps_per_sm == 32
        assert RTX_3090.max_warps_per_sm == 48
        assert RTX_3090.peak_flops == pytest.approx(35.58e12)
        assert RTX_3090.flops_per_byte > RTX_2080_TI.flops_per_byte

    def test_to_dict(self):
        data = RTX_3060.to_dict()
        assert data["architecture"] == "Ampere"
        assert data["sm_count"] == 28


class TestOccupancy:
    def test_full_occupancy_small_block(self):
        occ = compute_occupancy(RTX_2080_TI, threads_per_block=256, registers_per_thread=32,
                                shared_mem_per_block_bytes=0)
        assert occ.blocks_per_sm == 4
        assert occ.occupancy == pytest.approx(1.0)

    def test_warp_limited(self):
        occ = compute_occupancy(RTX_2080_TI, 1024, 32, 0)
        assert occ.blocks_per_sm == 1
        assert occ.limiting_factor in ("warps", "registers")
        assert occ.occupancy == pytest.approx(1.0)

    def test_register_limited(self):
        occ = compute_occupancy(RTX_3090, 256, 128, 0)
        # 128 regs * 256 threads = 32768 regs per block -> 2 blocks on a 64k register file.
        assert occ.blocks_per_sm == 2
        assert occ.limiting_factor == "registers"

    def test_shared_memory_limited(self):
        occ = compute_occupancy(RTX_3090, 128, 32, 40 * 1024)
        assert occ.limiting_factor == "shared_memory"
        assert occ.blocks_per_sm == 2

    def test_too_many_threads_raises(self):
        with pytest.raises(ResourceLimitError):
            compute_occupancy(RTX_3090, 2048, 32, 0)

    def test_too_much_shared_memory_raises(self):
        with pytest.raises(ResourceLimitError):
            compute_occupancy(RTX_2080_TI, 128, 32, 64 * 1024)

    def test_zero_threads_raises(self):
        with pytest.raises(ResourceLimitError):
            compute_occupancy(RTX_3090, 0, 32, 0)

    def test_ampere_allows_more_resident_threads_than_turing(self):
        turing = compute_occupancy(RTX_2080_TI, 256, 40, 0)
        ampere = compute_occupancy(RTX_3090, 256, 40, 0)
        assert ampere.active_warps >= turing.active_warps


class TestMemoryModel:
    def test_coalescing_full_for_warp_aligned(self):
        assert coalescing_efficiency(RTX_3090, 32) == 1.0
        assert coalescing_efficiency(RTX_3090, 256) == 1.0

    def test_coalescing_penalises_narrow_blocks(self):
        assert coalescing_efficiency(RTX_3090, 8) < coalescing_efficiency(RTX_3090, 16) < 1.0
        assert coalescing_efficiency(RTX_3090, 1) >= 0.125

    def test_vector_access_monotone_up_to_preferred(self):
        widths = [1, 2, 4, 8]
        values = [vector_access_efficiency(RTX_3090, w) for w in widths]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_vector_access_penalises_overwide_on_turing(self):
        assert vector_access_efficiency(RTX_2080_TI, 8) < vector_access_efficiency(RTX_2080_TI, 4)

    def test_read_only_cache_helps_turing_more(self):
        assert read_only_cache_factor(RTX_2080_TI, True) > read_only_cache_factor(RTX_3090, True)
        assert read_only_cache_factor(RTX_3090, False) == 1.0

    def test_l2_reuse_bounds(self):
        small = l2_reuse_factor(RTX_3090, 1024)
        huge = l2_reuse_factor(RTX_3090, 10 * 1024**3)
        assert 0.3 <= small <= 0.7
        assert 0.9 <= huge <= 1.0

    def test_bank_conflicts_removed_by_padding(self):
        assert bank_conflict_factor(RTX_3090, 48, use_padding=True) == 1.0
        assert bank_conflict_factor(RTX_3090, 48, use_padding=False) > 1.0
        assert bank_conflict_factor(RTX_3090, 64, use_padding=False) == 1.0

    def test_dram_time_scales_with_bytes_and_efficiency(self):
        fast = dram_time_ms(RTX_3090, MemoryTraffic(1e9, 0, efficiency=1.0))
        slow = dram_time_ms(RTX_3090, MemoryTraffic(1e9, 0, efficiency=0.5))
        assert slow == pytest.approx(2 * fast)
        assert dram_time_ms(RTX_3090, MemoryTraffic(2e9, 0)) == pytest.approx(2 * fast)


class TestNoise:
    def test_stable_hash_deterministic_and_sensitive(self):
        config = {"a": 1, "b": 2}
        assert stable_hash("x", config) == stable_hash("x", {"b": 2, "a": 1})
        assert stable_hash("x", config) != stable_hash("y", config)
        assert stable_hash("x", config) != stable_hash("x", {"a": 1, "b": 3})

    def test_config_noise_reproducible(self):
        a = config_noise("GPU", "gemm", {"p": 1})
        b = config_noise("GPU", "gemm", {"p": 1})
        assert a == b
        assert a != config_noise("GPU", "gemm", {"p": 2})

    def test_noise_magnitude(self):
        factors = [config_noise("GPU", "k", {"p": i}, sigma=0.015) for i in range(500)]
        assert all(0.9 < f < 1.12 for f in factors)
        mean = sum(factors) / len(factors)
        assert 0.99 < mean < 1.01

    def test_zero_sigma_is_identity(self):
        assert lognormal_factor(12345, 0.0) == 1.0

    def test_jitter_varies_with_repetition(self):
        a = measurement_jitter("GPU", "k", {"p": 1}, repetition=0)
        b = measurement_jitter("GPU", "k", {"p": 1}, repetition=1)
        assert a != b


class TestPerfmodelHelpers:
    def test_occupancy_factor_saturates(self):
        assert occupancy_throughput_factor(0.5, 0.5) == 1.0
        assert occupancy_throughput_factor(0.9, 0.5) == 1.0
        assert occupancy_throughput_factor(0.1, 0.5) < occupancy_throughput_factor(0.3, 0.5) < 1.0

    def test_ilp_factor_peak_at_best(self):
        assert ilp_factor(8, 8) == pytest.approx(1.0)
        assert ilp_factor(2, 8) < 1.0
        assert ilp_factor(32, 8) < 1.0
        assert ilp_factor(0, 8) == pytest.approx(0.92)

    def test_tail_effect(self):
        # A grid much larger than the machine has negligible tail.
        assert tail_effect_factor(RTX_3090, 100_000, 4) > 0.99
        # A grid smaller than one wave leaves most of the machine idle.
        assert tail_effect_factor(RTX_3090, 10, 4) < 0.1
        assert tail_effect_factor(RTX_3090, 0, 4) <= 1e-3


@given(occ=st.floats(min_value=0.0, max_value=1.0),
       sat=st.floats(min_value=0.05, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_property_occupancy_factor_bounded(occ, sat):
    """The occupancy throughput factor always lies in (0, 1]."""
    factor = occupancy_throughput_factor(occ, sat)
    assert 0.0 < factor <= 1.0


@given(blocks=st.integers(min_value=1, max_value=10**6),
       per_sm=st.integers(min_value=1, max_value=16))
@settings(max_examples=100, deadline=None)
def test_property_tail_effect_bounded(blocks, per_sm):
    """The tail factor is a utilisation, hence in (0, 1]."""
    factor = tail_effect_factor(RTX_3090, blocks, per_sm)
    assert 0.0 < factor <= 1.0
