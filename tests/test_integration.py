"""End-to-end integration tests: the full pipeline the paper's evaluation runs.

These tests execute a miniature version of the whole study -- campaign, every analysis,
tuner comparison -- and check the cross-module contracts rather than individual units.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import benchmark_suite, gpu_catalog
from repro.analysis import report
from repro.analysis.campaign import Campaign
from repro.analysis.centrality_report import centrality_study
from repro.analysis.convergence import random_search_convergence
from repro.analysis.distribution import distribution_summary
from repro.analysis.importance import importance_study
from repro.analysis.portability import portability_study
from repro.analysis.spacesize import space_size_table
from repro.analysis.speedup import speedup_study
from repro.core.runner import run_tuning
from repro.tuners import GeneticAlgorithm, RandomSearch


@pytest.fixture(scope="module")
def mini_study():
    """A two-benchmark, two-GPU miniature of the paper's full study."""
    benchmarks = {name: bm for name, bm in benchmark_suite().items()
                  if name in ("pnpoly", "hotspot")}
    gpus = {name: gpu for name, gpu in gpu_catalog().items()
            if name in ("RTX_3090", "RTX_Titan")}
    campaign = Campaign(benchmarks, gpus, sample_size=300, exhaustive_limit=10_000, seed=3)
    caches = campaign.all_caches()
    return benchmarks, gpus, campaign, caches


class TestFullPipeline:
    def test_campaign_covers_cross_product(self, mini_study):
        benchmarks, gpus, campaign, caches = mini_study
        assert set(caches) == {(b, g) for b in benchmarks for g in gpus}
        for cache in caches.values():
            assert cache.num_valid > 50

    def test_every_figure_reproduces_from_the_same_caches(self, mini_study):
        benchmarks, gpus, campaign, caches = mini_study

        # Fig. 1
        summaries = [distribution_summary(c) for c in caches.values()]
        assert len(summaries) == 4

        # Fig. 2
        curves = [random_search_convergence(c, repetitions=20, budget=100) for c in caches.values()]
        assert all(c.median_relative_performance[-1] > 0.5 for c in curves)

        # Fig. 3 (pnpoly only; hotspot is sampled and excluded as in the paper)
        centrality = centrality_study(caches, benchmark_names=("pnpoly",), proportions=(0.1, 0.5))
        assert len(centrality) == 2

        # Fig. 4
        speedups = {e.benchmark: e for e in speedup_study(caches) if e.gpu == "RTX_3090"}
        assert speedups["hotspot"].speedup > speedups["pnpoly"].speedup

        # Fig. 5
        matrices = portability_study(benchmarks, caches, gpus, benchmark_names=("pnpoly",))
        assert np.all(np.diag(matrices["pnpoly"].relative_performance) == 1.0)

        # Fig. 6
        importances = importance_study(caches, n_estimators=50, max_depth=4, n_repeats=1,
                                       max_samples=2000)
        assert len(importances) == 4
        for rep in importances.values():
            assert rep.r2 > 0.7

        # Table VIII
        rows = space_size_table(benchmarks, gpus, importances, caches=caches,
                                enumeration_limit=10_000, constrained_sample=5_000)
        by_name = {r.benchmark: r for r in rows}
        assert by_name["pnpoly"].cardinality == 4_092
        assert by_name["hotspot"].cardinality == 22_200_000
        assert by_name["hotspot"].valid_range is None  # too large -> "N/A" as in the paper
        assert by_name["hotspot"].reduced < by_name["hotspot"].cardinality

        # Everything renders.
        text = "\n".join([
            report.format_distribution(summaries),
            report.format_convergence(curves),
            report.format_centrality(centrality),
            report.format_speedups(speedup_study(caches)),
            report.format_portability(matrices),
            report.format_importance(importances),
            report.format_space_sizes(rows),
        ])
        assert "Table VIII" in text and "Fig. 6" in text

    def test_importance_consistent_across_gpus(self, mini_study):
        """The paper's observation: parameter importance ranking is stable across GPUs."""
        benchmarks, gpus, campaign, caches = mini_study
        pnpoly_caches = {k: v for k, v in caches.items() if k[0] == "pnpoly"}
        reports = importance_study(pnpoly_caches, n_estimators=60, max_depth=4, n_repeats=1)
        rankings = []
        for rep in reports.values():
            top2 = tuple(name for name, _ in rep.ranked()[:2])
            rankings.append(set(top2))
        assert rankings[0] & rankings[1], "top parameters should overlap across GPUs"

    def test_tuner_comparison_on_cache_replay(self, mini_study):
        """Tuners compared on cached data (the suite's intended benchmarking workflow)."""
        benchmarks, gpus, campaign, caches = mini_study
        cache = caches[("pnpoly", "RTX_3090")]
        optimum = cache.optimum()
        problem = cache.to_problem()
        results = {}
        for tuner in (RandomSearch(seed=0), GeneticAlgorithm(seed=0, population_size=10)):
            problem.reset_cache()
            results[tuner.name] = run_tuning(tuner, problem, max_evaluations=80)
        for name, result in results.items():
            assert result.num_evaluations == 80, name
            assert result.best_value >= optimum
            rel = optimum / result.best_value
            assert rel > 0.7, name

    def test_campaign_noise_toggle(self):
        """with_noise=False produces strictly deterministic model output."""
        benchmarks = {"pnpoly": benchmark_suite()["pnpoly"]}
        gpus = {"RTX_3090": gpu_catalog()["RTX_3090"]}
        quiet = Campaign(benchmarks, gpus, with_noise=False)
        noisy = Campaign(benchmarks, gpus, with_noise=True)
        a = quiet.cache("pnpoly", "RTX_3090").optimum()
        b = noisy.cache("pnpoly", "RTX_3090").optimum()
        assert a != b
        assert abs(a - b) / a < 0.1
