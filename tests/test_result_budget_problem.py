"""Unit tests for observations, tuning results, budgets and the problem interface."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.budget import Budget
from repro.core.errors import BudgetExhaustedError, ReproError, ResourceLimitError
from repro.core.problem import ObjectiveDirection, TuningProblem
from repro.core.result import Observation, TuningResult, merge_results
from repro.core.searchspace import SearchSpace
from repro.core.parameter import Parameter


def _toy_problem(evaluate=None, memoize=True):
    space = SearchSpace([Parameter("x", (1, 2, 3, 4)), Parameter("y", (1, 2, 3, 4))],
                        ["x * y <= 12"])
    if evaluate is None:
        def evaluate(cfg):
            return float(cfg["x"] * 10 + cfg["y"])
    return TuningProblem("toy", space, evaluate, gpu="SIM", memoize=memoize)


class TestObservation:
    def test_basic_fields(self):
        obs = Observation({"x": 1}, 2.5, evaluation_index=3, gpu="g", benchmark="b")
        assert obs.value == 2.5
        assert not obs.is_failure
        assert obs.key == (("x", 1),)

    def test_failure_detection(self):
        assert Observation({"x": 1}, math.inf).is_failure
        assert Observation({"x": 1}, 1.0, valid=False).is_failure

    def test_serialization_round_trip(self):
        obs = Observation({"x": 1, "y": 2}, 3.5, evaluation_index=7, gpu="g", benchmark="b")
        restored = Observation.from_dict(obs.to_dict())
        assert restored.config == {"x": 1, "y": 2}
        assert restored.value == 3.5
        assert restored.evaluation_index == 7

    def test_invalid_serializes_value_as_none(self):
        obs = Observation({"x": 1}, math.inf, valid=False, error="boom")
        data = obs.to_dict()
        assert data["value"] is None
        restored = Observation.from_dict(data)
        assert restored.is_failure and restored.error == "boom"


class TestTuningResult:
    def _result(self, values):
        result = TuningResult(benchmark="b", gpu="g", tuner="t", seed=0)
        for i, v in enumerate(values):
            valid = math.isfinite(v)
            result.record(Observation({"x": i}, v if valid else math.inf, valid=valid,
                                      evaluation_index=i))
        return result

    def test_best_and_counts(self):
        result = self._result([5.0, 3.0, math.inf, 4.0])
        assert result.num_evaluations == 4
        assert result.num_valid == 3
        assert result.num_failures == 1
        assert result.best_value == 3.0
        assert result.best_config == {"x": 1}

    def test_best_of_empty_run_raises(self):
        result = TuningResult()
        with pytest.raises(ReproError):
            _ = result.best_observation
        assert result.best_value == math.inf

    def test_best_value_trace_monotone(self):
        result = self._result([5.0, 7.0, 3.0, 4.0])
        trace = result.best_value_trace()
        assert list(trace) == [5.0, 5.0, 3.0, 3.0]
        assert np.all(np.diff(trace) <= 0)

    def test_relative_performance_trace(self):
        result = self._result([6.0, 3.0])
        rel = result.relative_performance_trace(optimum=3.0)
        np.testing.assert_allclose(rel, [0.5, 1.0])

    def test_relative_performance_requires_positive_optimum(self):
        result = self._result([6.0])
        with pytest.raises(ReproError):
            result.relative_performance_trace(0.0)

    def test_evaluations_to_reach(self):
        result = self._result([6.0, 4.0, 3.0])
        assert result.evaluations_to_reach(0.74, optimum=3.0) == 2
        assert result.evaluations_to_reach(0.99, optimum=3.0) == 3
        assert self._result([6.0]).evaluations_to_reach(0.9, optimum=3.0) is None

    def test_serialization_round_trip(self):
        result = self._result([5.0, math.inf, 2.0])
        result.metadata["note"] = "hello"
        restored = TuningResult.from_dict(result.to_dict())
        assert restored.num_evaluations == 3
        assert restored.best_value == 2.0
        assert restored.metadata["note"] == "hello"

    def test_merge_results(self):
        a = self._result([5.0])
        b = self._result([2.0])
        merged = merge_results([a, b])
        assert merged.num_evaluations == 2
        assert merged.best_value == 2.0

    def test_merge_rejects_mixed_benchmarks(self):
        a = TuningResult(benchmark="a")
        b = TuningResult(benchmark="b")
        with pytest.raises(ReproError):
            merge_results([a, b])

    def test_unique_configs(self):
        result = TuningResult()
        result.record(Observation({"x": 1}, 1.0))
        result.record(Observation({"x": 1}, 1.0))
        result.record(Observation({"x": 2}, 1.0))
        assert result.unique_configs() == 2


class TestBudget:
    def test_evaluation_limit(self):
        budget = Budget(max_evaluations=2)
        budget.charge()
        assert not budget.exhausted
        budget.charge()
        assert budget.exhausted
        with pytest.raises(BudgetExhaustedError):
            budget.charge()

    def test_remaining_evaluations(self):
        budget = Budget(max_evaluations=3)
        assert budget.remaining_evaluations == 3
        budget.charge()
        assert budget.remaining_evaluations == 2
        assert Budget().remaining_evaluations == math.inf

    def test_simulated_time_limit(self):
        budget = Budget(max_simulated_seconds=0.5, compile_overhead_seconds=0.0)
        budget.charge(simulated_seconds=0.3)
        assert not budget.exhausted
        budget.charge(simulated_seconds=0.3)
        assert budget.exhausted

    def test_unique_config_limit(self):
        budget = Budget(max_unique_configs=1)
        budget.charge(new_config=True)
        assert budget.exhausted

    def test_reset_and_copy(self):
        budget = Budget(max_evaluations=5)
        budget.charge()
        fresh = budget.copy()
        assert fresh.evaluations_used == 0
        budget.reset()
        assert budget.evaluations_used == 0

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            Budget(max_evaluations=-1)

    def test_charge_bulk_exactly_remaining_is_fine(self):
        budget = Budget(max_evaluations=5)
        budget.charge_bulk(3)
        budget.charge_bulk(2)  # exactly the remaining allowance
        assert budget.evaluations_used == 5
        assert budget.exhausted

    def test_charge_bulk_overshoot_raises(self):
        budget = Budget(max_evaluations=5)
        budget.charge_bulk(3)
        with pytest.raises(BudgetExhaustedError):
            budget.charge_bulk(3)  # one past the remaining allowance
        # The failed bulk charge must not have recorded anything.
        assert budget.evaluations_used == 3
        fresh = Budget(max_evaluations=5)
        with pytest.raises(BudgetExhaustedError):
            fresh.charge_bulk(6)
        assert fresh.evaluations_used == 0

    def test_charge_bulk_unlimited_budget_never_overshoots(self):
        budget = Budget()
        budget.charge_bulk(10_000)
        assert budget.evaluations_used == 10_000

    def test_affordable_evaluations_protocol(self):
        assert Budget().affordable_evaluations() == math.inf
        budget = Budget(max_evaluations=7)
        assert budget.affordable_evaluations() == 7
        budget.charge_bulk(5)
        assert budget.affordable_evaluations() == 2
        # Outcome-dependent limits cannot precompute an affordable prefix.
        assert Budget(max_unique_configs=3).affordable_evaluations() is None
        assert Budget(max_simulated_seconds=1.0).affordable_evaluations() is None
        assert Budget(max_evaluations=5,
                      max_unique_configs=5).affordable_evaluations() is None


class TestObjectiveDirection:
    def test_better(self):
        assert ObjectiveDirection.MINIMIZE.better(1.0, 2.0)
        assert ObjectiveDirection.MAXIMIZE.better(2.0, 1.0)

    def test_worst_value(self):
        assert ObjectiveDirection.MINIMIZE.worst_value == math.inf
        assert ObjectiveDirection.MAXIMIZE.worst_value == -math.inf


class TestTuningProblem:
    def test_valid_evaluation(self):
        problem = _toy_problem()
        obs = problem.evaluate({"x": 2, "y": 3})
        assert obs.value == 23.0
        assert obs.valid
        assert obs.gpu == "SIM" and obs.benchmark == "toy"

    def test_constraint_violation_becomes_invalid_observation(self):
        problem = _toy_problem()
        obs = problem.evaluate({"x": 4, "y": 4})
        assert obs.is_failure
        assert "constraint" in obs.error

    def test_resource_limit_becomes_invalid_observation(self):
        def evaluate(cfg):
            raise ResourceLimitError("too big", resource="shared_memory")
        problem = _toy_problem(evaluate)
        obs = problem.evaluate({"x": 1, "y": 1})
        assert obs.is_failure
        assert "resource limit" in obs.error

    def test_non_finite_objective_is_failure(self):
        problem = _toy_problem(lambda cfg: float("nan"))
        assert problem.evaluate({"x": 1, "y": 1}).is_failure

    def test_memoization_counts_distinct_calls_once(self):
        calls = []
        def evaluate(cfg):
            calls.append(dict(cfg))
            return 1.0
        problem = _toy_problem(evaluate)
        problem.evaluate({"x": 1, "y": 1})
        problem.evaluate({"x": 1, "y": 1})
        assert len(calls) == 1
        assert problem.evaluation_count == 1
        assert problem.cache_size == 1

    def test_memoization_disabled(self):
        calls = []
        def evaluate(cfg):
            calls.append(1)
            return 1.0
        problem = _toy_problem(evaluate, memoize=False)
        problem.evaluate({"x": 1, "y": 1})
        problem.evaluate({"x": 1, "y": 1})
        assert len(calls) == 2

    def test_reset_cache(self):
        problem = _toy_problem()
        problem.evaluate({"x": 1, "y": 1})
        problem.reset_cache()
        assert problem.evaluation_count == 0
        assert problem.cache_size == 0

    def test_objective_shortcut(self):
        problem = _toy_problem()
        assert problem.objective({"x": 1, "y": 2}) == 12.0
        assert problem.objective({"x": 4, "y": 4}) == math.inf

    def test_evaluate_many(self):
        problem = _toy_problem()
        observations = problem.evaluate_many([{"x": 1, "y": 1}, {"x": 2, "y": 2}])
        assert [o.value for o in observations] == [11.0, 22.0]
