"""Tests of the generation-batched population tuners and their support layers.

Four layers of protection:

* **Operator RNG-stream discipline** -- every vectorized operator draw (GA
  crossover gates, paired tournament picks, DE donor choice over a pre-built
  pool, PSO's merged cognitive/social noise draw) must consume the generator
  stream exactly like the scalar sequence it replaced, so a golden breakage
  points at the operator, not the diff.  Fuzzed with hypothesis over seeds and
  shapes.
* **Batched-vs-sequential trajectory equivalence** -- a peeked generation-batched
  run and the same run with peeking disabled (the literal per-candidate loop)
  must produce byte-identical results and budget states on every kernel replay.
* **Batch codecs** -- ``decode_digits_batch``/``decode_indices``/``encode_index``
  agree element-wise with their scalar/per-row counterparts, including extreme
  inputs that stress the padded grid.
* **Memoized feasibility fast paths** -- the packed bitmap and the scalar memo
  rejection loop agree with the constraint-evaluation paths, draw for draw.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.budget import Budget
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.gpus.specs import RTX_3090
from repro.tuners import DifferentialEvolution, GeneticAlgorithm, ParticleSwarm
from repro.tuners.genetic import GeneticAlgorithm as GA, _Individual

POPULATION_TUNERS = {
    "genetic": lambda: GeneticAlgorithm(population_size=10),
    "diff_evo": lambda: DifferentialEvolution(population_size=8),
    "pso": lambda: ParticleSwarm(swarm_size=8),
}


def states_equal(a: np.random.Generator, b: np.random.Generator) -> bool:
    return a.bit_generator.state == b.bit_generator.state


# ------------------------------------------------------- operator stream discipline


class TestOperatorStreamDiscipline:
    """Sized operator draws reproduce the scalar draw sequence exactly."""

    @given(seed=st.integers(0, 2**31 - 1), dims=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_crossover_gate_draw_matches_per_gene_loop(self, seed, dims):
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        digits_a = np.arange(dims, dtype=np.int64)
        digits_b = np.arange(dims, dtype=np.int64) + 100
        a = _Individual(digits_a, 0, 1.0)
        b = _Individual(digits_b, 1, 2.0)
        got = GA(population_size=2)._crossover(a, b, rng_a)
        # The seed implementation: one uniform per gene, in parameter order.
        expected = np.empty_like(digits_a)
        for j in range(dims):
            expected[j] = digits_a[j] if rng_b.random() < 0.5 else digits_b[j]
        assert np.array_equal(got, expected)
        assert states_equal(rng_a, rng_b)

    @given(seed=st.integers(0, 2**31 - 1), rate=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_mutation_keeps_interleaved_gate_and_sample_order(self, seed, rate):
        radices = [4, 7, 2, 9, 3]
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        ga = GA(population_size=2, mutation_rate=rate)
        got = ga._mutate(radices, np.zeros(len(radices), dtype=np.int64), rng_a)
        # The seed implementation: gate draw, then (only when the gate fires) a
        # re-sample draw, strictly interleaved per gene.
        expected = np.zeros(len(radices), dtype=np.int64)
        for j, radix in enumerate(radices):
            if rng_b.random() < rate:
                expected[j] = int(rng_b.integers(0, radix))
        assert np.array_equal(got, expected)
        assert states_equal(rng_a, rng_b)

    @given(seed=st.integers(0, 2**31 - 1), pop=st.integers(2, 30),
           k=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_tournament_pair_matches_two_sequential_tournaments(self, seed, pop, k):
        values = np.random.default_rng(seed ^ 0xABCDEF).random(pop).tolist()
        population = [_Individual(np.zeros(1, dtype=np.int64), i, v)
                      for i, v in enumerate(values)]
        ga = GA(population_size=2, tournament_size=k)
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        pair = ga._tournament_pair(population, rng_a)
        # The seed implementation: two independent size-k tournaments, each one
        # sized pick draw then a first-minimum scan in pick order.
        expected = []
        for _ in range(2):
            picks = rng_b.integers(0, len(population), size=k)
            contenders = [population[int(i)] for i in picks]
            expected.append(min(contenders, key=lambda ind: ind.value))
        assert pair[0] is expected[0] and pair[1] is expected[1]
        assert states_equal(rng_a, rng_b)

    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(4, 24))
    @settings(max_examples=60, deadline=None)
    def test_de_donor_choice_on_prebuilt_pool_matches_list_rebuild(self, seed, n):
        target = seed % n
        pool = np.asarray([i for i in range(n) if i != target])
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        got = rng_a.choice(pool, size=3, replace=False)
        # The seed implementation rebuilt the exclusion list per target and let
        # `choice` convert it.
        expected = rng_b.choice([i for i in range(n) if i != target], size=3,
                                replace=False)
        assert np.array_equal(got, expected)
        assert states_equal(rng_a, rng_b)

    @given(seed=st.integers(0, 2**31 - 1), dims=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_pso_merged_noise_draw_matches_two_vector_draws(self, seed, dims):
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        r_cog, r_soc = rng_a.random((2, dims))
        assert np.array_equal(r_cog, rng_b.random(dims))
        assert np.array_equal(r_soc, rng_b.random(dims))
        assert states_equal(rng_a, rng_b)

    @given(seed=st.integers(0, 2**31 - 1), hi=st.integers(2, 2**40),
           k=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_sized_integer_draws_match_scalar_sequence(self, seed, hi, k):
        # The underlying guarantee the paired tournament (and every other sized
        # draw substitution) rests on: a size-k bounded draw consumes the
        # stream element-wise like k scalar draws.
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        got = rng_a.integers(0, hi, size=k)
        expected = [int(rng_b.integers(0, hi)) for _ in range(k)]
        assert got.tolist() == expected
        assert states_equal(rng_a, rng_b)


# -------------------------------------------- batched vs sequential trajectories


class TestBatchedTrajectoryEquivalence:
    """Peeked generation-batching is byte-identical to the per-candidate loop."""

    @pytest.fixture(scope="class")
    def replay_caches(self, benchmarks):
        return {name: benchmarks[name].build_cache(RTX_3090, sample_size=400,
                                                   seed=5)
                for name in ("gemm", "hotspot")}

    @pytest.mark.parametrize("tuner_name", sorted(POPULATION_TUNERS))
    @pytest.mark.parametrize("strict", [True, False])
    def test_peeked_run_equals_sequential_run(self, tuner_name, strict,
                                              replay_caches):
        for kernel, cache in replay_caches.items():
            for seed in (0, 3):
                batched_problem = cache.to_problem(strict=strict)
                sequential_problem = cache.to_problem(strict=strict)
                # Disabling the peek hooks forces GenerationRun into its
                # sequential mode: one evaluate_index per candidate.
                sequential_problem._peek_index_fn = None
                sequential_problem._peek_one_fn = None
                assert not sequential_problem.peekable

                budget_a = Budget(max_evaluations=120)
                budget_b = Budget(max_evaluations=120)
                a = POPULATION_TUNERS[tuner_name]().tune(batched_problem,
                                                         budget_a, seed=seed)
                b = POPULATION_TUNERS[tuner_name]().tune(sequential_problem,
                                                         budget_b, seed=seed)
                key = (tuner_name, kernel, strict, seed)
                assert json.dumps(a.to_dict()) == json.dumps(b.to_dict()), key
                assert budget_a.to_dict() == budget_b.to_dict(), key
                assert (batched_problem.evaluation_count
                        == sequential_problem.evaluation_count), key

    @pytest.mark.parametrize("tuner_name", sorted(POPULATION_TUNERS))
    def test_simulated_seconds_budget_takes_sequential_settle(self, tuner_name,
                                                              replay_caches):
        # A budget the bulk protocol cannot precompute: evaluate_generation's
        # sequential fallback must still match the pure per-candidate loop.
        cache = replay_caches["gemm"]
        peeked_problem = cache.to_problem(strict=False)
        scalar_problem = cache.to_problem(strict=False)
        scalar_problem._peek_index_fn = None
        scalar_problem._peek_one_fn = None

        def budget():
            return Budget(max_evaluations=90, max_simulated_seconds=0.12)

        budget_a, budget_b = budget(), budget()
        a = POPULATION_TUNERS[tuner_name]().tune(peeked_problem, budget_a, seed=1)
        b = POPULATION_TUNERS[tuner_name]().tune(scalar_problem, budget_b, seed=1)
        assert budget_a.affordable_evaluations() is None
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())
        assert budget_a.to_dict() == budget_b.to_dict()


# ------------------------------------------------------------------- batch codecs


class TestBatchCodecs:
    def test_decode_digits_batch_matches_scalar_rows(self, benchmarks):
        rng = np.random.default_rng(17)
        for name in ("gemm", "hotspot", "pnpoly"):
            space = benchmarks[name].space
            base = space.encode_indices(
                rng.integers(0, space.cardinality, size=40))
            vectors = base + rng.normal(0.0, 8.0, size=base.shape)
            batch = space.decode_digits_batch(vectors)
            for row, vector in zip(batch, vectors):
                assert np.array_equal(row, space.decode_digits(vector)), name
            indices = space.decode_indices(vectors)
            for index, vector in zip(indices.tolist(), vectors):
                assert index == space.decode_index(vector), name

    def test_decode_matches_per_parameter_scan_on_extremes(self, small_space):
        dims = small_space.dimensions
        for vector in (np.full(dims, np.inf), np.full(dims, -np.inf),
                       np.full(dims, 1e9), np.zeros(dims)):
            got = small_space.decode_digits(vector)
            for j, p in enumerate(small_space.parameters):
                expected = int(np.argmin(np.abs(p.numeric_values() - vector[j])))
                assert int(got[j]) == expected, (vector[0], j)

    def test_decode_round_trips_encoded_members(self, benchmarks):
        space = benchmarks["gemm"].space
        rng = np.random.default_rng(3)
        indices = rng.integers(0, space.cardinality, size=30)
        vectors = space.encode_indices(indices)
        assert np.array_equal(space.decode_indices(vectors), indices)

    def test_encode_index_matches_batch_row(self, benchmarks):
        rng = np.random.default_rng(23)
        for name, benchmark in benchmarks.items():
            space = benchmark.space
            indices = rng.integers(0, space.cardinality, size=15)
            batch = space.encode_indices(indices)
            for k, index in enumerate(indices.tolist()):
                assert np.array_equal(space.encode_index(index), batch[k]), name

    def test_encode_index_range_check(self, small_space):
        from repro.core.errors import InvalidConfigurationError
        with pytest.raises(InvalidConfigurationError):
            small_space.encode_index(-1)
        with pytest.raises(InvalidConfigurationError):
            small_space.encode_index(small_space.cardinality)

    def test_decode_shape_checks(self, small_space):
        from repro.core.errors import InvalidConfigurationError
        with pytest.raises(InvalidConfigurationError):
            small_space.decode_digits([0.0])
        with pytest.raises(InvalidConfigurationError):
            small_space.decode_index([0.0])
        with pytest.raises(InvalidConfigurationError):
            small_space.decode_digits_batch(np.zeros((3, 1)))

    def test_digits_of_index_is_public_and_matches_codec(self, benchmarks):
        space = benchmarks["pnpoly"].space
        rng = np.random.default_rng(9)
        indices = rng.integers(0, space.cardinality, size=20)
        batch = space.indices_to_digits(indices)
        for k, index in enumerate(indices.tolist()):
            assert np.array_equal(space.digits_of_index(index), batch[k])
        # The pre-publication spelling stays as an alias.
        assert np.array_equal(space._digits_of_index(int(indices[0])),
                              space.digits_of_index(int(indices[0])))


# ------------------------------------------------- memoized feasibility fast paths


class TestMemoizedFeasibilityFastPaths:
    def _space_pair(self):
        """Two identical constrained spaces, one with the feasible memo built."""
        def build():
            return SearchSpace(
                [Parameter("a", tuple(range(8))), Parameter("b", tuple(range(6))),
                 Parameter("c", (1, 2, 4, 8))],
                ["a % 2 == 0 or b > 3", "c <= 4 or a > 5"])
        memoized, plain = build(), build()
        assert memoized.feasible_indices() is not None
        return memoized, plain

    def test_bitmap_membership_matches_constraint_eval(self):
        memoized, plain = self._space_pair()
        for index in range(memoized.cardinality):
            assert memoized.index_is_feasible(index) == \
                plain.index_is_feasible(index), index

    def test_memoized_scalar_draw_matches_eval_loop_stream(self):
        memoized, plain = self._space_pair()
        for seed in range(25):
            rng_a = np.random.default_rng(seed)
            rng_b = np.random.default_rng(seed)
            for _ in range(5):
                assert memoized.sample_one_index(rng=rng_a) == \
                    plain.sample_one_index(rng=rng_b), seed
            assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_release_feasible_memo_drops_bitmap(self):
        memoized, _ = self._space_pair()
        assert memoized.index_is_feasible(0) in (True, False)
        assert "_feas_bits" in memoized.__dict__
        memoized.release_feasible_memo()
        assert "_feas_bits" not in memoized.__dict__
        # Verdicts survive through the constraint-evaluation path.
        rebuilt = memoized.feasible_indices()
        assert rebuilt is not None


# ----------------------------------------------------------------- scalar peeking


class TestScalarPeek:
    def test_peek_index_matches_batch_peek(self, benchmarks, gpu_3090):
        for strict in (True, False):
            cache = benchmarks["gemm"].build_cache(gpu_3090, sample_size=80,
                                                   seed=2)
            problem = cache.to_problem(strict=strict)
            assert problem.peekable
            rng = np.random.default_rng(0)
            space = cache.space
            stored = space.indices_of_configs([dict(o.config) for o in cache])[:20]
            probes = np.concatenate([stored,
                                     rng.integers(0, space.cardinality, 20)])
            values, failure, raises = problem.peek_indices(probes)
            for k, index in enumerate(probes.tolist()):
                assert problem.peek_index(index) == \
                    (values[k], failure[k], raises[k]), (strict, index)
            # Peeking is side-effect-free either way.
            assert problem.evaluation_count == 0
            assert problem.cache_size == 0

    def test_peek_index_none_when_unpeekable(self, pnpoly, gpu_3090):
        problem = pnpoly.problem(gpu_3090)
        assert not problem.peekable
        assert problem.peek_index(0) is None
        assert problem.peek_indices(np.arange(4)) is None

    def test_batch_wrapper_when_only_batch_peek_exists(self, benchmarks,
                                                       gpu_3090):
        cache = benchmarks["gemm"].build_cache(gpu_3090, sample_size=50, seed=7)
        problem = cache.to_problem(strict=False)
        problem._peek_one_fn = None  # force the one-element batch wrapper
        assert problem.peekable
        index = int(cache.space.indices_of_configs(
            [dict(next(iter(cache)).config)])[0])
        values, failure, raises = problem.peek_indices(np.asarray([index]))
        assert problem.peek_index(index) == \
            (float(values[0]), bool(failure[0]), bool(raises[0]))
