"""Tests of the benchmark search-space definitions against the paper's tables.

Tables I--VII fix the parameter lists and value counts of every benchmark, and Table
VIII's "Cardinality" column fixes the product.  These tests pin the reproduction to the
paper exactly.
"""

from __future__ import annotations

import pytest

from repro.kernels import BENCHMARK_NAMES, all_benchmarks

#: Cardinality column of Table VIII.
PAPER_CARDINALITIES = {
    "pnpoly": 4_092,
    "nbody": 9_408,
    "convolution": 18_432,
    "gemm": 82_944,
    "expdist": 9_732_096,
    "hotspot": 22_200_000,
    "dedispersion": 123_863_040,
}

#: Per-parameter value counts from Tables I--VII (the "#" column).
PAPER_PARAMETER_COUNTS = {
    "gemm": {"MWG": 4, "NWG": 4, "MDIMC": 3, "NDIMC": 3, "MDIMA": 3, "NDIMB": 3,
             "VWM": 4, "VWN": 4, "SA": 2, "SB": 2},
    "nbody": {"block_size": 4, "outer_unroll_factor": 4, "inner_unroll_factor1": 7,
              "inner_unroll_factor2": 7, "use_soa": 2, "local_mem": 2, "vector_type": 3},
    "hotspot": {"block_size_x": 37, "block_size_y": 6, "tile_size_x": 10, "tile_size_y": 10,
                "temporal_tiling_factor": 10, "loop_unroll_factor_t": 10, "sh_power": 2,
                "blocks_per_sm": 5},
    "pnpoly": {"block_size_x": 31, "tile_size": 11, "between_method": 4, "use_method": 3},
    "convolution": {"block_size_x": 12, "block_size_y": 6, "tile_size_x": 8, "tile_size_y": 8,
                    "use_padding": 2, "read_only": 2},
    "expdist": {"block_size_x": 6, "block_size_y": 6, "tile_size_x": 8, "tile_size_y": 8,
                "use_shared_mem": 3, "loop_unroll_factor_x": 8, "loop_unroll_factor_y": 8,
                "use_column": 2, "n_y_blocks": 11},
    "dedispersion": {"block_size_x": 36, "block_size_y": 32, "tile_size_x": 16,
                     "tile_size_y": 16, "tile_stride_x": 2, "tile_stride_y": 2,
                     "loop_unroll_factor_channel": 21, "blocks_per_sm": 5},
}


@pytest.fixture(scope="module")
def suite():
    return all_benchmarks()


class TestSuiteComposition:
    def test_all_seven_benchmarks_present(self, suite):
        assert set(suite) == set(BENCHMARK_NAMES)
        assert len(suite) == 7

    def test_benchmark_metadata(self, suite):
        for name, benchmark in suite.items():
            assert benchmark.name == name
            assert benchmark.display_name
            assert benchmark.paper_table.startswith("Table")
            assert benchmark.application_domain
            assert benchmark.workload.sizes

    def test_parameter_table_rows(self, suite):
        for benchmark in suite.values():
            table = benchmark.parameter_table()
            assert len(table) == benchmark.space.dimensions
            for row in table:
                assert row["count"] == len(row["values"])

    def test_summary_round(self, suite):
        summary = suite["gemm"].summary()
        assert summary["cardinality"] == PAPER_CARDINALITIES["gemm"]
        assert summary["dimensions"] == 10


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestAgainstPaperTables:
    def test_cardinality_matches_table8(self, suite, name):
        assert suite[name].space.cardinality == PAPER_CARDINALITIES[name]

    def test_parameter_names_and_counts_match_tables(self, suite, name):
        expected = PAPER_PARAMETER_COUNTS[name]
        space = suite[name].space
        assert set(space.parameter_names) == set(expected)
        for parameter in space.parameters:
            assert parameter.cardinality == expected[parameter.name], parameter.name

    def test_constraints_leave_nonempty_space(self, suite, name):
        space = suite[name].space
        # A random sample of the product must contain at least one valid configuration.
        assert space.sample(5, rng=0, valid_only=True, unique=True)

    def test_default_configuration_well_formed(self, suite, name):
        default = suite[name].space.default_configuration()
        suite[name].space.validate_membership(default)


class TestKnownConstrainedCounts:
    def test_gemm_constrained_matches_paper_exactly(self, suite):
        # The CLBlast divisibility rules reproduce the paper's 17 956 exactly.
        assert suite["gemm"].space.count_constrained() == 17_956

    def test_pnpoly_unconstrained(self, suite):
        assert suite["pnpoly"].space.count_constrained() == 4_092

    def test_nbody_constrained_same_order_as_paper(self, suite):
        count = suite["nbody"].space.count_constrained()
        assert 0 < count < 9_408
        # Paper reports 1 568; the reconstructed constraints land in the same order.
        assert 300 <= count <= 4_000

    def test_convolution_constrained_same_order_as_paper(self, suite):
        count = suite["convolution"].space.count_constrained()
        assert 5_000 <= count <= 15_000  # paper: 9 400

    def test_workload_overrides(self):
        suite = all_benchmarks(gemm={"matrix_size": 1024}, nbody={"n_bodies": 4096})
        assert suite["gemm"].workload["m"] == 1024
        assert suite["nbody"].workload["n_bodies"] == 4096
        # Overrides never change the search space itself.
        assert suite["gemm"].space.cardinality == PAPER_CARDINALITIES["gemm"]
