"""Unit tests for repro.core.parameter."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.errors import InvalidConfigurationError
from repro.core.parameter import Parameter


class TestConstruction:
    def test_basic_properties(self):
        p = Parameter("block", (32, 64, 128))
        assert p.name == "block"
        assert p.cardinality == 3
        assert len(p) == 3
        assert list(p) == [32, 64, 128]
        assert p.default == 32

    def test_explicit_default(self):
        p = Parameter("block", (32, 64, 128), default=128)
        assert p.default == 128

    def test_default_must_be_allowed(self):
        with pytest.raises(InvalidConfigurationError):
            Parameter("block", (32, 64), default=12)

    def test_rejects_empty_values(self):
        with pytest.raises(InvalidConfigurationError):
            Parameter("block", ())

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidConfigurationError):
            Parameter("block", (32, 32, 64))

    def test_rejects_empty_name(self):
        with pytest.raises(InvalidConfigurationError):
            Parameter("", (1, 2))

    def test_string_values_supported(self):
        p = Parameter("method", ("crossing", "winding"))
        assert "crossing" in p
        assert not p.is_numeric

    def test_equality_by_name_and_values(self):
        assert Parameter("a", (1, 2)) == Parameter("a", (1, 2))
        assert Parameter("a", (1, 2)) != Parameter("a", (1, 3))
        assert Parameter("a", (1, 2)) != Parameter("b", (1, 2))

    def test_hashable(self):
        assert len({Parameter("a", (1, 2)), Parameter("a", (1, 2))}) == 1


class TestQueries:
    def test_index_round_trip(self):
        p = Parameter("vw", (1, 2, 4, 8))
        for i, v in enumerate(p.values):
            assert p.index_of(v) == i
            assert p.value_at(i) == v

    def test_index_of_unknown_value(self):
        with pytest.raises(InvalidConfigurationError):
            Parameter("vw", (1, 2)).index_of(3)

    def test_value_at_out_of_range(self):
        with pytest.raises(InvalidConfigurationError):
            Parameter("vw", (1, 2)).value_at(5)

    def test_contains(self):
        p = Parameter("sw", (0, 1))
        assert 0 in p and 1 in p and 2 not in p

    def test_is_boolean(self):
        assert Parameter("sw", (0, 1)).is_boolean
        assert not Parameter("vw", (1, 2)).is_boolean

    def test_neighbors_interior_and_endpoints(self):
        p = Parameter("vw", (1, 2, 4, 8))
        assert p.neighbors(2) == (1, 4)
        assert p.neighbors(1) == (2,)
        assert p.neighbors(8) == (4,)

    def test_all_other_values(self):
        p = Parameter("vw", (1, 2, 4))
        assert p.all_other_values(2) == (1, 4)
        assert p.all_other_values(1) == (2, 4)


class TestSamplingAndEncoding:
    def test_sample_only_allowed_values(self, rng):
        p = Parameter("block", (32, 64, 128))
        for _ in range(50):
            assert p.sample(rng) in p

    def test_sample_reproducible(self):
        p = Parameter("block", tuple(range(100)))
        a = [p.sample(np.random.default_rng(3)) for _ in range(10)]
        b = [p.sample(np.random.default_rng(3)) for _ in range(10)]
        assert a == b

    def test_numeric_encoding_uses_values(self):
        p = Parameter("vw", (1, 2, 4, 8))
        assert p.encode(4) == 4.0
        np.testing.assert_allclose(p.numeric_values(), [1, 2, 4, 8])

    def test_string_encoding_uses_ordinals(self):
        p = Parameter("method", ("a", "b", "c"))
        assert p.encode("b") == 1.0
        np.testing.assert_allclose(p.numeric_values(), [0, 1, 2])


class TestSerialization:
    def test_round_trip(self):
        p = Parameter("block", (32, 64, 128), default=64, description="threads")
        q = Parameter.from_dict(p.to_dict())
        assert q == p
        assert q.default == 64
        assert q.description == "threads"


@given(values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1,
                       max_size=30, unique=True))
def test_property_index_round_trip(values):
    """index_of and value_at are inverse bijections for any unique value list."""
    p = Parameter("x", values)
    for i, v in enumerate(values):
        assert p.index_of(v) == i
        assert p.value_at(i) == v
    assert p.cardinality == len(values)


@given(values=st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=20,
                       unique=True))
def test_property_neighbors_are_adjacent(values):
    """Every value has 1 or 2 neighbours, all of which are allowed values."""
    p = Parameter("x", values)
    for v in values:
        neighbors = p.neighbors(v)
        assert 1 <= len(neighbors) <= 2
        assert all(n in p for n in neighbors)
        assert v not in neighbors
