"""Tests of the analytical performance models.

The models stand in for hardware measurements, so the tests pin the properties the
analyses rely on: determinism, positivity, sensitivity to the tuning parameters,
architecture-family structure (portability), and the qualitative landmarks of the
paper (Hotspot's outlier speedup, GEMM/Convolution having rare optima).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import ResourceLimitError
from repro.gpus.specs import RTX_2080_TI, RTX_3060, RTX_3090, RTX_TITAN
from repro.kernels import BENCHMARK_NAMES, all_benchmarks


@pytest.fixture(scope="module")
def suite():
    return all_benchmarks()


def _sample_valid(benchmark, gpu, n=30, seed=0):
    configs = benchmark.space.sample(n, rng=seed, valid_only=True, unique=True)
    out = []
    for config in configs:
        try:
            out.append((config, benchmark.model.time_ms(config, gpu)))
        except ResourceLimitError:
            continue
    return out


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
class TestModelBasics:
    def test_times_positive_and_finite(self, suite, name):
        for _, t in _sample_valid(suite[name], RTX_3090):
            assert math.isfinite(t) and t > 0

    def test_deterministic(self, suite, name):
        benchmark = suite[name]
        config = benchmark.space.sample_one(rng=3)
        try:
            a = benchmark.model.time_ms(config, RTX_3090)
            b = benchmark.model.time_ms(config, RTX_3090)
        except ResourceLimitError:
            pytest.skip("sampled configuration not launchable")
        assert a == b

    def test_noise_is_small_and_multiplicative(self, suite, name):
        benchmark = suite[name]
        for config, _ in _sample_valid(benchmark, RTX_3090, n=10):
            noisy = benchmark.model.time_ms(config, RTX_3090, with_noise=True)
            clean = benchmark.model.time_ms(config, RTX_3090, with_noise=False)
            assert abs(noisy / clean - 1.0) < 0.25

    def test_parameters_change_performance(self, suite, name):
        times = [t for _, t in _sample_valid(suite[name], RTX_3090, n=40)]
        assert len(set(np.round(times, 9))) > max(3, len(times) // 4)

    def test_faster_gpu_is_generally_faster(self, suite, name):
        # The RTX 3090 dominates the RTX 3060 in every datasheet number, so the same
        # configuration should essentially never run faster on the 3060.
        pairs = _sample_valid(suite[name], RTX_3090, n=20)
        faster = 0
        total = 0
        for config, t_3090 in pairs:
            try:
                t_3060 = suite[name].model.time_ms(config, RTX_3060)
            except ResourceLimitError:
                continue
            total += 1
            if t_3090 <= t_3060 * 1.05:
                faster += 1
        assert total > 0 and faster / total > 0.9

    def test_estimate_breakdown_consistent(self, suite, name):
        benchmark = suite[name]
        for config, t in _sample_valid(benchmark, RTX_3090, n=5):
            estimate = benchmark.measure(config, RTX_3090)
            assert estimate.time_ms == pytest.approx(t)
            assert estimate.compute_time_ms >= 0
            assert estimate.memory_time_ms >= 0
            assert 0 < estimate.occupancy.occupancy <= 1
            data = estimate.to_dict()
            assert data["time_ms"] == pytest.approx(t)

    def test_is_valid_on_consistent_with_model(self, suite, name):
        benchmark = suite[name]
        for config in benchmark.space.sample(20, rng=11, valid_only=True, unique=True):
            valid = benchmark.is_valid_on(config, RTX_2080_TI)
            try:
                benchmark.model.time_ms(config, RTX_2080_TI)
                ran = True
            except ResourceLimitError:
                ran = False
            assert valid == ran


class TestBuildCache:
    def test_sampled_cache_counts(self, suite):
        cache = suite["hotspot"].build_cache(RTX_3090, sample_size=200, seed=0)
        assert len(cache) == 200
        assert not cache.exhaustive
        assert 0 < cache.num_valid <= 200

    def test_exhaustive_cache_for_small_space(self, suite):
        cache = suite["pnpoly"].build_cache(RTX_3090)
        assert cache.exhaustive
        assert len(cache) == 4_092
        assert cache.num_valid > 4_000

    def test_cache_reproducible(self, suite):
        a = suite["expdist"].build_cache(RTX_3090, sample_size=50, seed=3)
        b = suite["expdist"].build_cache(RTX_3090, sample_size=50, seed=3)
        assert [o.value for o in a] == [o.value for o in b]


class TestQualitativeLandmarks:
    """The headline structure of the paper's Figs. 1/4, checked cheaply."""

    @pytest.fixture(scope="class")
    def speedups(self, suite):
        out = {}
        for name in BENCHMARK_NAMES:
            benchmark = suite[name]
            sample = None if benchmark.space.cardinality <= 20_000 else 1_500
            cache = benchmark.build_cache(RTX_3090, sample_size=sample, seed=5)
            values = cache.values()
            out[name] = float(np.median(values) / values.min())
        return out

    def test_hotspot_is_the_speedup_outlier(self, speedups):
        others = max(v for k, v in speedups.items() if k != "hotspot")
        assert speedups["hotspot"] > 4.0
        assert speedups["hotspot"] > 1.5 * others

    def test_other_benchmarks_have_moderate_speedups(self, speedups):
        for name, value in speedups.items():
            if name == "hotspot":
                continue
            assert 1.05 < value < 4.5, name

    def test_convolution_and_gemm_have_rare_optima(self, suite):
        for name in ("convolution", "gemm"):
            benchmark = suite[name]
            cache = benchmark.build_cache(RTX_3090)
            values = cache.values()
            near_optimal = float(np.mean(values <= values.min() / 0.9))
            assert near_optimal < 0.02, name

    def test_portability_within_family_better_than_across(self, suite):
        """Optimal configs transfer well 3060<->3090 and worse to the Turing cards."""
        benchmark = suite["pnpoly"]
        cache_3090 = benchmark.build_cache(RTX_3090)
        best = cache_3090.best().config

        def relative(gpu):
            target_cache = benchmark.build_cache(gpu)
            target_best = target_cache.best().value
            transferred = target_cache.lookup(best).value
            return target_best / transferred

        same_family = relative(RTX_3060)
        cross_family = min(relative(RTX_2080_TI), relative(RTX_TITAN))
        assert same_family > cross_family
        assert same_family > 0.85
        assert cross_family < 0.95
