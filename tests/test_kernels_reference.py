"""Functional tests of the NumPy reference implementations.

The central invariant of autotuning is that every configuration computes the same
result; these tests check it for every kernel by comparing the configuration-aware
drivers against plain ground-truth implementations, plus direct correctness checks of
the mathematics on small hand-checkable instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import all_benchmarks
from repro.kernels.reference import (
    convolution_reference,
    dedispersion_reference,
    expdist_reference,
    gemm_reference,
    hotspot_reference,
    nbody_reference,
    pnpoly_reference,
)


@pytest.fixture(scope="module")
def suite():
    return all_benchmarks()


# ----------------------------------------------------------------------------- GEMM


class TestGemmReference:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal((48, 32))
        b = rng.standard_normal((32, 40))
        c = rng.standard_normal((48, 40))
        expected = 1.5 * a @ b + 0.5 * c
        result = gemm_reference.tiled_gemm(a, b, c, {"MWG": 16, "NWG": 16, "SA": 1, "SB": 1},
                                           alpha=1.5, beta=0.5)
        np.testing.assert_allclose(result, expected, rtol=1e-10)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            gemm_reference.tiled_gemm(rng.random((4, 4)), rng.random((5, 4)),
                                      rng.random((4, 4)), {})

    def test_all_tilings_agree(self, suite, rng):
        reference = None
        for config in suite["gemm"].space.sample(6, rng=1, valid_only=True, unique=True):
            result = suite["gemm"].run_reference(config, rng=7, matrix_size=64)
            if reference is None:
                reference = result
            else:
                np.testing.assert_allclose(result, reference, rtol=1e-9)


# ---------------------------------------------------------------------------- N-body


class TestNbodyReference:
    def test_two_body_symmetry(self):
        positions = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        masses = np.array([1.0, 1.0])
        acc = nbody_reference.nbody_accelerations(positions, masses)
        # Equal masses: accelerations are equal and opposite, along x only.
        np.testing.assert_allclose(acc[0], -acc[1], atol=1e-12)
        assert acc[0, 0] > 0 and abs(acc[0, 1]) < 1e-12 and abs(acc[0, 2]) < 1e-12

    def test_tiled_matches_ground_truth(self, rng):
        positions = rng.standard_normal((96, 3))
        masses = rng.uniform(0.5, 2.0, 96)
        expected = nbody_reference.nbody_accelerations(positions, masses)
        for config in ({"block_size": 32, "outer_unroll_factor": 2, "use_soa": 1, "local_mem": 1},
                       {"block_size": 17, "outer_unroll_factor": 1, "use_soa": 0, "local_mem": 0}):
            result = nbody_reference.tiled_nbody(positions, masses, config)
            np.testing.assert_allclose(result, expected, rtol=1e-9)

    def test_all_configs_agree(self, suite):
        reference = None
        for config in suite["nbody"].space.sample(6, rng=2, valid_only=True, unique=True):
            result = suite["nbody"].run_reference(config, rng=3, n_bodies=64)
            if reference is None:
                reference = result
            else:
                np.testing.assert_allclose(result, reference, rtol=1e-9)


# --------------------------------------------------------------------------- Hotspot


class TestHotspotReference:
    def test_uniform_grid_stays_uniform_without_power(self):
        temp = np.full((16, 16), 100.0)
        power = np.zeros((16, 16))
        out = hotspot_reference.hotspot_step(temp, power)
        # No gradients and no power: only the ambient coupling acts, uniformly.
        assert np.allclose(out, out[0, 0])
        assert out[0, 0] < 100.0  # pulled towards the ambient temperature (80)

    def test_power_heats_the_hotspot(self):
        temp = np.full((9, 9), 80.0)
        power = np.zeros((9, 9))
        power[4, 4] = 10.0
        out = hotspot_reference.hotspot_iterate(temp, power, iterations=5)
        assert out[4, 4] == out.max()
        assert out[4, 4] > 80.0

    def test_temporal_tiling_does_not_change_result(self, rng):
        temp = 80.0 + rng.uniform(0, 10, (24, 24))
        power = rng.uniform(0, 5, (24, 24))
        base = hotspot_reference.hotspot_iterate(temp, power, 12, {"temporal_tiling_factor": 1})
        for ttf in (2, 3, 5, 12):
            out = hotspot_reference.hotspot_iterate(temp, power, 12,
                                                    {"temporal_tiling_factor": ttf})
            np.testing.assert_allclose(out, base, rtol=1e-12)

    def test_driver_configs_agree(self, suite):
        reference = None
        for config in suite["hotspot"].space.sample(5, rng=4, valid_only=True, unique=True):
            result = suite["hotspot"].run_reference(config, rng=5, grid_size=20, iterations=6)
            if reference is None:
                reference = result
            else:
                np.testing.assert_allclose(result, reference, rtol=1e-12)


# ---------------------------------------------------------------------------- Pnpoly


class TestPnpolyReference:
    def test_square_polygon_classification(self):
        square = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        points = np.array([[0.5, 0.5], [1.5, 0.5], [-0.1, 0.2], [0.9, 0.99]])
        inside = pnpoly_reference.point_in_polygon(points, square)
        assert list(inside) == [True, False, False, True]

    def test_regular_polygon_generator(self):
        hexagon = pnpoly_reference.regular_polygon(6, radius=2.0)
        assert hexagon.shape == (6, 2)
        np.testing.assert_allclose(np.linalg.norm(hexagon, axis=1), 2.0)

    @pytest.mark.parametrize("between_method", [0, 1, 2, 3])
    @pytest.mark.parametrize("use_method", [0, 1, 2])
    def test_all_method_variants_agree(self, rng, between_method, use_method):
        polygon = pnpoly_reference.regular_polygon(17)
        points = rng.uniform(-1.5, 1.5, size=(512, 2))
        expected = pnpoly_reference.point_in_polygon(points, polygon, 0, 0)
        result = pnpoly_reference.point_in_polygon(points, polygon, between_method, use_method)
        np.testing.assert_array_equal(result, expected)

    def test_tiled_matches_untiled(self, suite, rng):
        reference = None
        for config in suite["pnpoly"].space.sample(6, rng=6, valid_only=True, unique=True):
            result = suite["pnpoly"].run_reference(config, rng=9, num_points=400)
            if reference is None:
                reference = result
            else:
                np.testing.assert_array_equal(result, reference)


# ----------------------------------------------------------------------- Convolution


class TestConvolutionReference:
    def test_identity_filter(self, rng):
        image = rng.standard_normal((12, 12))
        identity = np.zeros((3, 3))
        identity[1, 1] = 1.0
        out = convolution_reference.convolve2d_valid(image, identity)
        np.testing.assert_allclose(out, image[1:-1, 1:-1])

    def test_filter_larger_than_image_raises(self, rng):
        with pytest.raises(ValueError):
            convolution_reference.convolve2d_valid(rng.random((4, 4)), rng.random((5, 5)))

    def test_tiled_matches_dense(self, rng):
        image = rng.standard_normal((40, 40))
        filt = rng.standard_normal((5, 5))
        expected = convolution_reference.convolve2d_valid(image, filt)
        for config in ({"block_size_x": 8, "block_size_y": 4, "tile_size_x": 2,
                        "tile_size_y": 3, "use_padding": 1},
                       {"block_size_x": 16, "block_size_y": 16, "tile_size_x": 1,
                        "tile_size_y": 1, "use_padding": 0}):
            out = convolution_reference.tiled_convolution(image, filt, config)
            np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_driver_configs_agree(self, suite):
        reference = None
        for config in suite["convolution"].space.sample(6, rng=8, valid_only=True, unique=True):
            result = suite["convolution"].run_reference(config, rng=2, image_size=48,
                                                        filter_size=7)
            if reference is None:
                reference = result
            else:
                np.testing.assert_allclose(result, reference, rtol=1e-10)


# --------------------------------------------------------------------------- Expdist


class TestExpdistReference:
    def test_identical_particles_score(self):
        # Perfectly overlapping localizations: every pair with distance 0 contributes 1.
        template = np.zeros((4, 2))
        model = np.zeros((4, 2))
        sigma = np.full(4, 0.1)
        score = expdist_reference.expdist(template, model, sigma, sigma)
        assert score == pytest.approx(16.0)

    def test_score_decreases_with_distance(self, rng):
        template = rng.standard_normal((32, 2))
        sigma = np.full(32, 0.05)
        near = expdist_reference.expdist(template, template + 0.01, sigma, sigma)
        far = expdist_reference.expdist(template, template + 1.0, sigma, sigma)
        assert near > far

    def test_tiled_matches_dense(self, rng):
        template = rng.standard_normal((60, 2))
        model = template + 0.02 * rng.standard_normal((60, 2))
        st_ = rng.uniform(0.01, 0.05, 60)
        sm = rng.uniform(0.01, 0.05, 60)
        expected = expdist_reference.expdist(template, model, st_, sm)
        for config in ({"block_size_x": 32, "block_size_y": 2, "tile_size_x": 2,
                        "tile_size_y": 4, "use_column": 1, "n_y_blocks": 4},
                       {"block_size_x": 64, "block_size_y": 1, "tile_size_x": 1,
                        "tile_size_y": 1, "use_column": 0, "n_y_blocks": 1}):
            score = expdist_reference.tiled_expdist(template, model, st_, sm, config)
            assert score == pytest.approx(expected, rel=1e-10)

    def test_driver_configs_agree(self, suite):
        reference = None
        for config in suite["expdist"].space.sample(6, rng=10, valid_only=True, unique=True):
            result = suite["expdist"].run_reference(config, rng=11, num_localizations=80)
            if reference is None:
                reference = result
            else:
                np.testing.assert_allclose(result, reference, rtol=1e-9)


# ----------------------------------------------------------------------- Dedispersion


class TestDedispersionReference:
    def test_delays_zero_for_zero_dm_and_highest_frequency(self):
        freqs = np.array([1200.0, 1300.0, 1400.0])
        delays = dedispersion_reference.dispersion_delays(np.array([0.0, 50.0]), freqs, 1e4)
        assert delays[0].max() == 0           # DM 0: no dispersion at all
        assert delays[1, 2] == 0              # highest frequency channel: no delay
        assert delays[1, 0] > delays[1, 1] > 0  # lower frequencies arrive later

    def test_dedispersion_recovers_pulse(self):
        # Build a dispersed pulse and check that dedispersing at the true DM
        # concentrates the power while a wrong DM does not.
        freqs = np.linspace(1220.0, 1520.0, 16)
        sampling = 24_400.0
        true_dm = 40.0
        delays = dedispersion_reference.dispersion_delays(np.array([true_dm]), freqs, sampling)[0]
        n_samples = 200 + delays.max()
        data = np.zeros((16, n_samples))
        for c in range(16):
            data[c, 100 + delays[c]] = 1.0
        out = dedispersion_reference.dedisperse(data, np.array([true_dm, 0.0]), freqs,
                                                sampling, 200)
        assert out[0].max() == pytest.approx(16.0)   # all channels aligned
        assert out[1].max() < 16.0                   # wrong DM: power stays spread out

    def test_insufficient_samples_raises(self):
        freqs = np.linspace(1220.0, 1520.0, 4)
        data = np.zeros((4, 10))
        with pytest.raises(ValueError):
            dedispersion_reference.dedisperse(data, np.array([500.0]), freqs, 24_400.0, 10)

    def test_tiled_matches_dense(self, rng):
        freqs = np.linspace(1220.0, 1520.0, 24)
        dms = np.linspace(0.0, 60.0, 12)
        sampling = 24_400.0
        max_delay = dedispersion_reference.dispersion_delays(dms, freqs, sampling).max()
        data = rng.uniform(0, 1, (24, 80 + max_delay))
        expected = dedispersion_reference.dedisperse(data, dms, freqs, sampling, 80)
        config = {"block_size_x": 16, "block_size_y": 4, "tile_size_x": 3, "tile_size_y": 2,
                  "loop_unroll_factor_channel": 6}
        out = dedispersion_reference.tiled_dedisperse(data, dms, freqs, sampling, 80, config)
        np.testing.assert_allclose(out, expected, rtol=1e-12)

    def test_driver_configs_agree(self, suite):
        reference = None
        for config in suite["dedispersion"].space.sample(5, rng=12, valid_only=True, unique=True):
            result = suite["dedispersion"].run_reference(config, rng=13, num_channels=16,
                                                         num_dms=8, num_output_samples=32)
            if reference is None:
                reference = result
            else:
                np.testing.assert_allclose(result, reference, rtol=1e-12)


# ------------------------------------------------------------------- property testing


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_property_gemm_tiling_invariant(seed):
    """Any GEMM tiling computes the same product as NumPy."""
    rng = np.random.default_rng(seed)
    m, k, n = rng.integers(5, 40, size=3)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    c = rng.standard_normal((m, n))
    mwg = int(rng.choice([16, 32, 64]))
    nwg = int(rng.choice([16, 32, 64]))
    config = {"MWG": mwg, "NWG": nwg, "SA": int(rng.integers(0, 2)), "SB": int(rng.integers(0, 2))}
    out = gemm_reference.tiled_gemm(a, b, c, config, alpha=1.0, beta=1.0)
    np.testing.assert_allclose(out, a @ b + c, rtol=1e-9, atol=1e-9)


@given(seed=st.integers(min_value=0, max_value=10_000),
       between_method=st.integers(min_value=0, max_value=3),
       use_method=st.integers(min_value=0, max_value=2))
@settings(max_examples=25, deadline=None)
def test_property_pnpoly_variants_agree(seed, between_method, use_method):
    """All algorithm variants classify random points identically."""
    rng = np.random.default_rng(seed)
    polygon = pnpoly_reference.regular_polygon(int(rng.integers(3, 24)))
    points = rng.uniform(-1.5, 1.5, size=(128, 2))
    baseline = pnpoly_reference.point_in_polygon(points, polygon, 0, 0)
    variant = pnpoly_reference.point_in_polygon(points, polygon, between_method, use_method)
    np.testing.assert_array_equal(variant, baseline)
