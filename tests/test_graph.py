"""Tests of the fitness flow graph, PageRank and the proportion-of-centrality metric."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from scipy import sparse

from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.graph.centrality import proportion_of_centrality
from repro.graph.ffg import build_ffg
from repro.graph.pagerank import pagerank


def _line_cache(values):
    """Cache over a 1-D space whose fitness profile is the given list."""
    space = SearchSpace([Parameter("x", tuple(range(len(values))))], name="line")
    cache = EvaluationCache("line", "SIM", space, exhaustive=True)
    for i, v in enumerate(values):
        cache.add({"x": i}, float(v))
    return cache


def _grid_cache(fn, nx_=5, ny=5):
    """Cache over a 2-D grid with fitness fn(x, y)."""
    space = SearchSpace([Parameter("x", tuple(range(nx_))), Parameter("y", tuple(range(ny)))],
                        name="grid")
    cache = EvaluationCache("grid", "SIM", space, exhaustive=True)
    for config in space.enumerate_all():
        cache.add(config, float(fn(config["x"], config["y"])))
    return cache


class TestFitnessFlowGraph:
    def test_monotone_line_has_single_minimum(self):
        ffg = build_ffg(_line_cache([5, 4, 3, 2, 1]))
        assert ffg.num_nodes == 5
        assert list(ffg.local_minima()) == [4]
        assert ffg.global_optimum() == 4

    def test_two_basins(self):
        # 2-D grid with two separated basins: (0, 0) is the global optimum and (3, 3)
        # is a worse local minimum -- they are Hamming distance 2 apart, so neither
        # sees the other in the fitness-flow neighbourhood.
        def fitness(x, y):
            if (x, y) == (0, 0):
                return 1.0
            if (x, y) == (3, 3):
                return 1.5
            return 10.0 + x + y
        cache = _grid_cache(fitness, nx_=5, ny=5)
        ffg = build_ffg(cache)
        minima_configs = {tuple(sorted(ffg.configs[i].items())) for i in ffg.local_minima()}
        assert minima_configs == {(("x", 0), ("y", 0)), (("x", 3), ("y", 3))}
        assert ffg.configs[ffg.global_optimum()] == {"x": 0, "y": 0}

    def test_edges_point_downhill(self):
        cache = _grid_cache(lambda x, y: (x - 2) ** 2 + (y - 3) ** 2)
        ffg = build_ffg(cache)
        rows, cols = ffg.adjacency.nonzero()
        assert np.all(ffg.fitness[cols] < ffg.fitness[rows])

    def test_unimodal_grid_single_minimum(self):
        cache = _grid_cache(lambda x, y: (x - 2) ** 2 + (y - 3) ** 2)
        ffg = build_ffg(cache)
        minima = ffg.local_minima()
        assert len(minima) == 1
        assert ffg.configs[minima[0]] == {"x": 2, "y": 3}

    def test_minima_within_band(self):
        # Same two-basin grid as above, with the secondary minimum only 5% worse.
        def fitness(x, y):
            if (x, y) == (0, 0):
                return 1.0
            if (x, y) == (3, 3):
                return 1.05
            return 10.0 + x + y
        ffg = build_ffg(_grid_cache(fitness, nx_=5, ny=5))
        assert len(ffg.minima_within(0.10)) == 2
        assert len(ffg.minima_within(0.01)) == 1
        with pytest.raises(ReproError):
            ffg.minima_within(-0.1)

    def test_empty_cache_raises(self):
        space = SearchSpace([Parameter("x", (0, 1))])
        with pytest.raises(ReproError):
            build_ffg(EvaluationCache("b", "g", space))

    def test_invalid_entries_excluded(self):
        cache = _line_cache([3, 2, 1])
        cache.add({"x": 0}, float("inf"), valid=False)
        ffg = build_ffg(cache)
        assert ffg.num_nodes == 2


class TestPageRank:
    def test_uniform_on_symmetric_cycle(self):
        # Directed 4-cycle: all nodes equivalent -> uniform PageRank.
        adjacency = sparse.csr_matrix(np.roll(np.eye(4), 1, axis=1))
        ranks = pagerank(adjacency)
        np.testing.assert_allclose(ranks, 0.25, atol=1e-8)

    def test_sink_accumulates_mass(self):
        # Star pointing at node 0: node 0 must have the highest rank.
        adjacency = sparse.csr_matrix(np.array([
            [0, 0, 0, 0],
            [1, 0, 0, 0],
            [1, 0, 0, 0],
            [1, 0, 0, 0],
        ], dtype=float))
        ranks = pagerank(adjacency)
        assert ranks[0] == max(ranks)
        assert ranks.sum() == pytest.approx(1.0)

    def test_matches_networkx(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((30, 30)) < 0.1).astype(float)
        np.fill_diagonal(dense, 0.0)
        adjacency = sparse.csr_matrix(dense)
        ours = pagerank(adjacency, damping=0.85, tol=1e-12)
        graph = nx.from_scipy_sparse_array(adjacency, create_using=nx.DiGraph)
        reference = nx.pagerank(graph, alpha=0.85, tol=1e-12)
        np.testing.assert_allclose(ours, [reference[i] for i in range(30)], atol=1e-6)

    def test_personalization_and_validation(self):
        adjacency = sparse.csr_matrix(np.array([[0, 1], [1, 0]], dtype=float))
        ranks = pagerank(adjacency, personalization=np.array([1.0, 0.0]))
        assert ranks.sum() == pytest.approx(1.0)
        with pytest.raises(ReproError):
            pagerank(adjacency, damping=1.5)
        with pytest.raises(ReproError):
            pagerank(adjacency, personalization=np.array([0.0, 0.0]))
        with pytest.raises(ReproError):
            pagerank(sparse.csr_matrix((0, 0)))


class TestProportionOfCentrality:
    def test_single_good_minimum_gives_one(self):
        report = proportion_of_centrality(_line_cache([5, 4, 3, 2, 1]), proportions=(0.05, 0.5))
        assert report.values == pytest.approx((1.0, 1.0))
        assert report.num_minima == 1

    def test_poor_minimum_lowers_metric(self):
        # Two basins on a grid: the poor minimum (3x the optimum) has a large basin,
        # so at a tight proportion the metric is well below 1 and it recovers to 1
        # once the band is wide enough to include both minima.
        def fitness(x, y):
            if (x, y) == (0, 0):
                return 1.0
            if (x, y) == (4, 4):
                return 3.0
            # Slope towards (4, 4): most of the landscape drains into the poor basin.
            return 20.0 - x - y
        report = proportion_of_centrality(_grid_cache(fitness, nx_=6, ny=6),
                                          proportions=(0.05, 20.0))
        assert report.value_at(0.05) < report.value_at(20.0)
        assert report.value_at(20.0) == pytest.approx(1.0)
        assert 0.0 < report.value_at(0.05) < 1.0

    def test_monotone_in_proportion(self, pnpoly_cache_3090):
        report = proportion_of_centrality(pnpoly_cache_3090,
                                          proportions=(0.01, 0.05, 0.2, 0.5))
        values = list(report.values)
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)
        assert report.num_nodes == pnpoly_cache_3090.num_valid

    def test_value_at_unknown_proportion(self):
        report = proportion_of_centrality(_line_cache([2, 1]), proportions=(0.1,))
        with pytest.raises(ReproError):
            report.value_at(0.3)

    def test_as_dict(self):
        report = proportion_of_centrality(_line_cache([2, 1]), proportions=(0.1, 0.2))
        assert set(report.as_dict()) == {0.1, 0.2}
