"""Chaos suite for the fault-tolerant execution layer.

Every test here injects a fault -- a crashed worker process, a shard hung past its
timeout, a transient or permanent exception, a corrupted checkpoint fragment -- and
asserts the standing contract of :mod:`repro.exec`: the campaign either completes
with merged caches *byte-identical* to the serial no-fault reference, or
quarantines the affected shards deterministically (same shards, same records, every
run).  Fault injection is seeded and declarative (:class:`repro.exec.faults
.FaultPlan`), so each failure scenario is exactly reproducible.
"""

from __future__ import annotations

import io
import json
import os
import random

import numpy as np
import pytest

from repro.core.errors import (
    ExecutionError,
    FragmentIntegrityError,
    ReproError,
    ShardTimeoutError,
    TransientExecutionError,
    WorkerCrashError,
    is_transient,
)
from repro.exec import (
    CheckpointStore,
    Fault,
    FaultPlan,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    ShardPlanner,
    corrupt_fragment,
    resume_campaign,
)
from repro.exec.cli import main as exec_main
from repro.exec.progress import ShardProgressReporter
from repro.exec.retry import unit_uniform

SAMPLE_N = 120
SHARD_SIZE = 40
EXHAUSTIVE_LIMIT = 5_000

#: Fast, deterministic backoff for tests: retries are effectively immediate.
FAST_RETRY = RetryPolicy(max_retries=3, base_delay=0.001, max_delay=0.01, seed=7)


def cache_bytes(cache) -> str:
    """Canonical serialized form used for byte-identity assertions."""
    return json.dumps(cache.to_dict())


@pytest.fixture(scope="module")
def planner(benchmarks, gpus):
    """Two units (hotspot sampled, gemm sampled via the limit), 3 shards each."""
    selected = {name: benchmarks[name] for name in ("hotspot", "gemm")}
    return ShardPlanner(selected, {"RTX_3090": gpus["RTX_3090"]},
                        sample_size=SAMPLE_N, exhaustive_limit=EXHAUSTIVE_LIMIT,
                        seed=99, shard_size=SHARD_SIZE)


@pytest.fixture(scope="module")
def plan(planner):
    return planner.plan()


@pytest.fixture(scope="module")
def reference(planner, plan):
    """The serial no-fault caches every chaos scenario must reproduce."""
    caches = SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
    return {key: cache_bytes(cache) for key, cache in caches.items()}


def assert_byte_identical(caches, reference):
    assert set(caches) == set(reference)
    for key in reference:
        assert cache_bytes(caches[key]) == reference[key], key


class _RecordingSerialExecutor(SerialExecutor):
    """Serial executor that records which shards it actually evaluated."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.executed_shards: list[int] = []

    def _run_shards(self, tasks, on_complete):
        self.executed_shards.extend(t.shard.shard_id for t in tasks)
        super()._run_shards(tasks, on_complete)


class TestWorkerFaultClasses:
    """One test per injected fault class, parallel and serial, vs the reference."""

    def test_transient_faults_are_retried_to_byte_identity(self, planner, plan,
                                                           reference):
        fault_plan = FaultPlan([
            Fault(site="worker", kind="transient", shard_id=1),
            Fault(site="worker", kind="transient", shard_id=4, attempts=(0, 1)),
        ])
        for executor in (ParallelExecutor(workers=2, retry_policy=FAST_RETRY,
                                          fault_plan=fault_plan),
                         SerialExecutor(retry_policy=FAST_RETRY,
                                        fault_plan=fault_plan)):
            caches = executor.run(plan, benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
            assert_byte_identical(caches, reference)
            assert executor.retry_counts == {1: 1, 4: 2}
            assert executor.quarantine == []

    def test_worker_crash_is_retried_to_byte_identity(self, planner, plan,
                                                      reference):
        fault_plan = FaultPlan([Fault(site="worker", kind="crash", shard_id=0)])
        executor = ParallelExecutor(workers=2, retry_policy=FAST_RETRY,
                                    fault_plan=fault_plan)
        caches = executor.run(plan, benchmarks=planner.benchmarks,
                              gpus=planner.gpus)
        assert_byte_identical(caches, reference)
        assert executor.retry_counts == {0: 1}
        assert executor.quarantine == []

    def test_hung_worker_is_killed_and_retried(self, planner, plan, reference):
        fault_plan = FaultPlan([Fault(site="worker", kind="hang", shard_id=2,
                                      hang_seconds=60.0)])
        executor = ParallelExecutor(workers=2, retry_policy=FAST_RETRY,
                                    shard_timeout=1.0, fault_plan=fault_plan)
        caches = executor.run(plan, benchmarks=planner.benchmarks,
                              gpus=planner.gpus)
        assert_byte_identical(caches, reference)
        assert executor.retry_counts == {2: 1}
        assert executor.quarantine == []

    def test_permanent_fault_quarantines_only_its_unit(self, planner, plan,
                                                       reference):
        # Shard 1 belongs to hotspot (shards 0-2); gemm (shards 3-5) must merge
        # byte-identically while hotspot is withheld.
        fault_plan = FaultPlan([Fault(site="worker", kind="permanent",
                                      shard_id=1)])
        for executor in (ParallelExecutor(workers=2, retry_policy=FAST_RETRY,
                                          fault_plan=fault_plan),
                         SerialExecutor(retry_policy=FAST_RETRY,
                                        fault_plan=fault_plan)):
            caches = executor.run(plan, benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
            assert set(caches) == {("gemm", "RTX_3090")}
            assert cache_bytes(caches[("gemm", "RTX_3090")]) == reference[
                ("gemm", "RTX_3090")]
            assert len(executor.quarantine) == 1
            record = executor.quarantine[0]
            # Permanent failures quarantine on the first attempt: retrying a
            # deterministic failure is pointless.
            assert record["shard_id"] == 1
            assert record["attempts"] == 1
            assert record["transient"] is False
            assert record["error_type"] == "ExecutionError"

    def test_exhausted_transient_faults_quarantine_deterministically(
            self, planner, plan):
        # A poison shard: transient on every attempt, so the retry budget runs
        # dry.  Two runs of each executor must quarantine identically.
        policy = RetryPolicy(max_retries=2, base_delay=0.001, max_delay=0.01)
        fault_plan = FaultPlan([Fault(site="worker", kind="transient", shard_id=4,
                                      attempts=tuple(range(10)))])
        records = []
        for _ in range(2):
            for factory in (
                    lambda: ParallelExecutor(workers=2, retry_policy=policy,
                                             fault_plan=fault_plan),
                    lambda: SerialExecutor(retry_policy=policy,
                                           fault_plan=fault_plan)):
                executor = factory()
                caches = executor.run(plan, benchmarks=planner.benchmarks,
                                      gpus=planner.gpus)
                assert set(caches) == {("hotspot", "RTX_3090")}
                assert len(executor.quarantine) == 1
                records.append(executor.quarantine[0])
        # Identical decisions everywhere: same shard, same attempt count, same
        # classification, same error text (parallel and serial alike).
        assert all(r == records[0] for r in records[1:])
        assert records[0]["attempts"] == 3  # max_retries + 1
        assert records[0]["transient"] is True

    def test_without_retry_policy_faults_fail_fast(self, planner, plan):
        fault_plan = FaultPlan([Fault(site="worker", kind="permanent",
                                      shard_id=0)])
        with pytest.raises(ExecutionError, match="injected permanent fault"):
            SerialExecutor(fault_plan=fault_plan).run(
                plan, benchmarks=planner.benchmarks, gpus=planner.gpus)
        with pytest.raises(ExecutionError, match="injected permanent fault"):
            ParallelExecutor(workers=2, fault_plan=fault_plan).run(
                plan, benchmarks=planner.benchmarks, gpus=planner.gpus)

    def test_random_fault_storm_still_merges_byte_identical(self, planner, plan,
                                                            reference):
        # Seeded chaos across the whole plan: half the shards draw a transient
        # or crash fault on their first attempt.  Retries absorb all of it.
        fault_plan = FaultPlan.random(seed=11, shard_ids=[s.shard_id
                                                          for s in plan.shards],
                                      rate=0.5)
        assert len(fault_plan) > 0
        executor = ParallelExecutor(workers=2, retry_policy=FAST_RETRY,
                                    fault_plan=fault_plan)
        caches = executor.run(plan, benchmarks=planner.benchmarks,
                              gpus=planner.gpus)
        assert_byte_identical(caches, reference)
        assert set(executor.retry_counts) == set(fault_plan.shard_ids())

    def test_happy_path_with_retry_policy_is_untouched(self, planner, plan,
                                                       reference):
        # The retry machinery enabled but never exercised: zero retries, zero
        # quarantine, and -- crucially -- the exact reference bytes (no RNG
        # stream was perturbed by merely arming the policy).
        executor = ParallelExecutor(workers=2, retry_policy=FAST_RETRY,
                                    shard_timeout=300.0)
        caches = executor.run(plan, benchmarks=planner.benchmarks,
                              gpus=planner.gpus)
        assert_byte_identical(caches, reference)
        assert executor.retry_counts == {}
        assert executor.quarantine == []


class TestFragmentIntegrity:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip", "tamper"])
    def test_corrupt_fragment_is_detected(self, planner, plan, tmp_path, mode):
        store = CheckpointStore(tmp_path / "ckpt")
        SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                             gpus=planner.gpus, checkpoint=store)
        shard = plan.shards[0]
        corrupt_fragment(store.fragment_path(shard), mode)
        with pytest.raises(FragmentIntegrityError):
            store.load_shard(shard)
        report = store.verify_fragments(plan)
        assert [r["shard_id"] for r in report["damaged"]] == [shard.shard_id]
        assert len(report["ok"]) == len(plan.shards) - 1

    def test_resume_heals_exactly_the_damaged_shards(self, planner, plan,
                                                     reference, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                             gpus=planner.gpus, checkpoint=store)
        first_bytes = {s.shard_id: store.fragment_path(s).read_bytes()
                       for s in plan.shards}
        corrupt_fragment(store.fragment_path(plan.shards[1]), "truncate")
        corrupt_fragment(store.fragment_path(plan.shards[4]), "tamper")

        executor = _RecordingSerialExecutor()
        resumed = resume_campaign(store, executor=executor,
                                  benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
        assert sorted(executor.executed_shards) == [1, 4]
        assert sorted(executor.repaired_shards) == [1, 4]
        assert_byte_identical(resumed, reference)
        # The healed fragments are byte-identical to the originals: shard
        # evaluation is a pure function of (benchmark, GPU, indices).
        for shard in plan.shards:
            assert store.fragment_path(shard).read_bytes() == first_bytes[
                shard.shard_id]
        assert store.load_health()["repaired"] == [1, 4]

    def test_injected_fragment_faults_heal_on_resume(self, planner, plan,
                                                     reference, tmp_path):
        # The fragment fault site: the executor saves a valid fragment, the
        # fault plan rots it on disk immediately after.  The first run's merge
        # (from in-memory rows) is already correct; the resume must detect the
        # damage and re-execute.
        store = CheckpointStore(tmp_path / "ckpt")
        fault_plan = FaultPlan([
            Fault(site="fragment", kind="bitflip", shard_id=2),
            Fault(site="fragment", kind="tamper", shard_id=5),
        ])
        first = SerialExecutor(fault_plan=fault_plan).run(
            plan, benchmarks=planner.benchmarks, gpus=planner.gpus,
            checkpoint=store)
        assert_byte_identical(first, reference)
        assert [r["shard_id"]
                for r in store.verify_fragments(plan)["damaged"]] == [2, 5]

        executor = _RecordingSerialExecutor()
        resumed = resume_campaign(store, executor=executor,
                                  benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
        assert sorted(executor.executed_shards) == [2, 5]
        assert_byte_identical(resumed, reference)
        assert store.verify_fragments(plan)["damaged"] == []

    def test_fragment_checksum_catches_valid_json_tampering(self, planner, plan,
                                                            tmp_path):
        # `tamper` keeps the JSON well-formed and the row count right -- only
        # the checksum can catch it.  This is the test that fails if checksum
        # verification is ever dropped.
        store = CheckpointStore(tmp_path / "ckpt")
        SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                             gpus=planner.gpus, checkpoint=store)
        shard = plan.shards[3]
        corrupt_fragment(store.fragment_path(shard), "tamper")
        payload = json.loads(store.fragment_path(shard).read_text())
        assert len(payload["rows"]) == shard.n_configs  # still shape-valid
        with pytest.raises(FragmentIntegrityError, match="checksum"):
            store.load_shard(shard)


class TestQuarantineHealth:
    def test_quarantine_is_recorded_and_cleared_by_resume(self, planner, plan,
                                                          reference, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        fault_plan = FaultPlan([Fault(site="worker", kind="transient",
                                      shard_id=0, attempts=tuple(range(10)))])
        executor = SerialExecutor(retry_policy=FAST_RETRY, fault_plan=fault_plan)
        executor.run(plan, benchmarks=planner.benchmarks, gpus=planner.gpus,
                     checkpoint=store)
        health = store.load_health()
        assert [r["shard_id"] for r in health["quarantined"]] == [0]
        assert health["retries"][0] == FAST_RETRY.max_retries
        status = store.status(plan)
        assert status["quarantined_shards"] == 1
        assert status["retry_attempts"] == FAST_RETRY.max_retries

        # A clean resume completes the quarantined shard and clears its record.
        resumed = resume_campaign(store, executor=SerialExecutor(),
                                  benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
        assert_byte_identical(resumed, reference)
        assert store.load_health()["quarantined"] == []
        assert store.status(plan)["quarantined_shards"] == 0


class _InterruptingReporter(ShardProgressReporter):
    """Raises KeyboardInterrupt after N completed shards (a mid-campaign Ctrl-C)."""

    def __init__(self, after: int):
        super().__init__(emit=lambda line: None)
        self._after = after

    def shard_done(self, shard):
        super().shard_done(shard)
        self._after -= 1
        if self._after <= 0:
            raise KeyboardInterrupt


class TestGracefulShutdown:
    @pytest.mark.parametrize("make_executor", [
        lambda: SerialExecutor(),
        lambda: ParallelExecutor(workers=2),
    ], ids=["serial", "parallel"])
    def test_interrupt_leaves_resumable_checkpoint(self, planner, plan,
                                                   reference, tmp_path,
                                                   make_executor):
        store = CheckpointStore(tmp_path / "ckpt")
        with pytest.raises(KeyboardInterrupt):
            make_executor().run(plan, benchmarks=planner.benchmarks,
                                gpus=planner.gpus, checkpoint=store,
                                progress=_InterruptingReporter(after=2))
        # Completed shards were flushed as valid fragments before the abort...
        done = store.completed_shard_ids(plan)
        assert len(done) >= 2
        assert store.verify_fragments(plan)["damaged"] == []
        # ...and a plain resume finishes byte-identically.
        executor = _RecordingSerialExecutor()
        resumed = resume_campaign(store, executor=executor,
                                  benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
        assert set(executor.executed_shards) == (
            {s.shard_id for s in plan.shards} - done)
        assert_byte_identical(resumed, reference)


class TestRetryPolicyDeterminism:
    def test_hypothesis_fuzz_delay_bounds_and_determinism(self):
        hypothesis = pytest.importorskip("hypothesis")
        given, settings, st = (hypothesis.given, hypothesis.settings,
                               hypothesis.strategies)

        @settings(max_examples=200, deadline=None)
        @given(seed=st.integers(0, 2**32), shard_id=st.integers(0, 10**6),
               retry=st.integers(0, 12),
               base=st.floats(1e-4, 1.0, allow_nan=False),
               jitter=st.floats(0.0, 1.0, allow_nan=False))
        def check(seed, shard_id, retry, base, jitter):
            policy = RetryPolicy(max_retries=13, base_delay=base,
                                 max_delay=max(base, 5.0), jitter=jitter,
                                 seed=seed)
            delay = policy.delay(shard_id, retry)
            again = RetryPolicy(max_retries=13, base_delay=base,
                                max_delay=max(base, 5.0), jitter=jitter,
                                seed=seed).delay(shard_id, retry)
            assert delay == again  # pure function of (policy, shard, retry)
            backoff = min(base * 2.0 ** retry, policy.max_delay)
            assert backoff * (1.0 - jitter) - 1e-12 <= delay <= backoff

        check()

    def test_schedule_is_stable_and_seed_sensitive(self):
        policy = RetryPolicy(max_retries=5, seed=42)
        assert policy.delays(3) == policy.delays(3)
        assert len(policy.delays(3)) == 5
        assert policy.delays(3) != RetryPolicy(max_retries=5, seed=43).delays(3)
        assert policy.delays(3) != policy.delays(4)  # per-shard decorrelation
        assert RetryPolicy(jitter=0.0, max_retries=3).delays(0) == (
            0.05, 0.1, 0.2)

    def test_retry_and_fault_machinery_never_touch_global_rng(self):
        random.seed(1234)
        np.random.seed(5678)
        py_state = random.getstate()
        np_state = np.random.get_state()

        policy = RetryPolicy(max_retries=8, seed=3)
        for shard_id in range(50):
            policy.delays(shard_id)
            unit_uniform("probe", shard_id)
        FaultPlan.random(seed=9, shard_ids=range(100), rate=0.5,
                         kinds=("transient", "crash", "hang"))

        assert random.getstate() == py_state
        after = np.random.get_state()
        assert after[0] == np_state[0]
        assert np.array_equal(after[1], np_state[1])
        assert after[2:] == np_state[2:]

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ReproError):
            SerialExecutor(shard_timeout=0.0)


class TestFaultPlanConstruction:
    def test_random_plan_is_seed_deterministic(self):
        a = FaultPlan.random(seed=5, shard_ids=range(40), rate=0.3)
        b = FaultPlan.random(seed=5, shard_ids=range(40), rate=0.3)
        assert a.to_dict() == b.to_dict()
        c = FaultPlan.random(seed=6, shard_ids=range(40), rate=0.3)
        assert a.to_dict() != c.to_dict()
        assert len(FaultPlan.random(seed=5, shard_ids=range(40), rate=0.0)) == 0

    def test_invalid_faults_are_rejected(self):
        with pytest.raises(ReproError):
            Fault(site="worker", kind="truncate", shard_id=0)
        with pytest.raises(ReproError):
            Fault(site="fragment", kind="crash", shard_id=0)
        with pytest.raises(ReproError):
            Fault(site="network", kind="crash", shard_id=0)
        with pytest.raises(ReproError):
            FaultPlan.random(seed=1, shard_ids=[0], rate=2.0)

    def test_taxonomy_classification(self):
        assert is_transient(WorkerCrashError("x", exit_code=9))
        assert is_transient(ShardTimeoutError("x", timeout=1.0))
        assert is_transient(TransientExecutionError("x"))
        assert not is_transient(ExecutionError("x"))
        assert not is_transient(ValueError("x"))

        class OptIn(RuntimeError):
            transient = True

        assert is_transient(OptIn("x"))


class TestStatusSessions:
    def test_throughput_ignores_dead_time_between_sessions(self, planner, plan,
                                                           tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                             gpus=planner.gpus, checkpoint=store)
        # Fake an interrupted-then-resumed timeline: 3 fragments, hours of dead
        # time, 3 more.  10s between completions within a session.
        base = 1_000_000_000
        mtimes = [base, base + 10, base + 20,
                  base + 10_000, base + 10_010, base + 10_020]
        for shard, mtime in zip(plan.shards, mtimes):
            os.utime(store.fragment_path(shard), (mtime, mtime))
        status = store.status(plan, session_gap=60.0)
        assert status["sessions"] == 2
        # Active elapsed: 4 intra-session gaps of 10s; the dead 9 980s gap and
        # the two session-head shards never enter the rate.
        assert status["elapsed_s"] == pytest.approx(40.0)
        assert status["configs_per_s"] == pytest.approx(4 * SHARD_SIZE / 40.0)
        # The adaptive default (10x median gap, floored at 60s) finds the same
        # split without being told.
        assert store.status(plan)["sessions"] == 2

    def test_fresh_and_single_fragment_checkpoints_report_no_rate(self, planner,
                                                                  plan,
                                                                  tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.initialize(plan)
        status = store.status(plan)  # no fragments at all
        assert "elapsed_s" not in status and "configs_per_s" not in status
        SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                             gpus=planner.gpus, checkpoint=store,
                             only_units=[("hotspot", "RTX_3090")])
        for shard in plan.shards[1:3]:
            os.unlink(store.fragment_path(shard))
        status = store.status(plan)  # one fragment: no rate, no crash
        assert status["shards_completed"] == 1
        assert "configs_per_s" not in status

    def test_progress_reporter_edge_cases(self, plan):
        lines = []
        clock = iter([0.0, 0.0]).__next__  # zero elapsed on the first shard
        reporter = ShardProgressReporter(emit=lines.append, clock=clock)
        reporter.begin(plan, plan.shards, set())
        reporter.shard_done(plan.shards[0])
        assert "eta" not in lines[-1]  # zero-division ETA guarded
        reporter.note("shard 1 failed transiently; retry 1/3 in 0.01s")
        assert lines[-1].startswith("shard 1 failed")
        assert reporter.shards_done == 1  # notes never advance the counters


class TestChaosCLI:
    def run_cli(self, *argv) -> tuple[int, str]:
        out = io.StringIO()
        code = exec_main(list(argv), out=out)
        return code, out.getvalue()

    def test_run_accepts_fault_tolerance_flags(self, tmp_path):
        code, text = self.run_cli(
            "run", "--benchmarks", "hotspot", "--gpus", "RTX_3090",
            "--sample-size", "120", "--shard-size", "40", "--workers", "1",
            "--max-retries", "2", "--shard-timeout", "600",
            "--checkpoint-dir", str(tmp_path / "ckpt"), "--quiet")
        assert code == 0, text
        assert "hotspot/RTX_3090: 120 entries" in text

    def test_doctor_flags_fixes_and_resume_round_trip(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        outdir = str(tmp_path / "caches")
        code, text = self.run_cli(
            "run", "--benchmarks", "hotspot", "--gpus", "RTX_3090",
            "--sample-size", "120", "--shard-size", "40", "--workers", "1",
            "--checkpoint-dir", ckpt, "--output-dir", outdir, "--quiet")
        assert code == 0, text
        first = (tmp_path / "caches" / "hotspot_RTX_3090.json").read_bytes()

        code, text = self.run_cli("doctor", "--checkpoint-dir", ckpt)
        assert code == 0 and "0 damaged" in text

        corrupt_fragment(tmp_path / "ckpt" / "shard_00001.json", "bitflip")
        corrupt_fragment(tmp_path / "ckpt" / "shard_00002.json", "tamper")
        code, text = self.run_cli("doctor", "--checkpoint-dir", ckpt)
        assert code == 1
        assert "2 damaged" in text and "--fix" in text

        code, text = self.run_cli("doctor", "--checkpoint-dir", ckpt, "--fix")
        assert code == 0
        assert text.count("deleted") == 2
        assert not (tmp_path / "ckpt" / "shard_00001.json").exists()

        code, text = self.run_cli("resume", "--checkpoint-dir", ckpt,
                                  "--output-dir", outdir, "--quiet")
        assert code == 0, text
        assert (tmp_path / "caches" / "hotspot_RTX_3090.json").read_bytes() == first

        code, text = self.run_cli("doctor", "--checkpoint-dir", ckpt)
        assert code == 0 and "0 damaged" in text

    def test_doctor_without_manifest(self, tmp_path):
        code, text = self.run_cli("doctor", "--checkpoint-dir",
                                  str(tmp_path / "nothing"))
        assert code == 1
        assert "no manifest" in text

    def test_status_reports_health(self, planner, plan, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        fault_plan = FaultPlan([Fault(site="worker", kind="transient",
                                      shard_id=3, attempts=tuple(range(10)))])
        SerialExecutor(retry_policy=FAST_RETRY, fault_plan=fault_plan).run(
            plan, benchmarks=planner.benchmarks, gpus=planner.gpus,
            checkpoint=store)
        code, text = self.run_cli("status", "--checkpoint-dir",
                                  str(tmp_path / "ckpt"))
        assert code == 0
        assert "retries: 3 attempt(s) across 1 shard(s)" in text
        assert "quarantined: 1 shard(s)" in text
        assert "shard     3" in text
