"""Differential suite for the columnar memory-mapped cache store.

The standing contract under test: the columnar format is a *performance twin* of
the JSON interchange format, never a semantic fork.  Every scenario here runs the
same campaign (or the same hand-built cache) through both paths and asserts that
the JSON serialization -- the canonical byte-identity currency of the repo -- is
exactly equal.  On top of that: the codec round-trips adversarial inputs
(hypothesis fuzz with ``+inf`` sentinels and non-ASCII error strings), any
truncation or bit damage to any column raises
:class:`~repro.core.errors.FragmentIntegrityError`, and columnar checkpoint
fragments merge byte-identically regardless of shard completion order.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core.cache import EvaluationCache
from repro.core.errors import FragmentIntegrityError, SerializationError
from repro.core.parameter import Parameter
from repro.core.searchspace import SearchSpace
from repro.exec import (
    CheckpointStore,
    SerialExecutor,
    ShardPlanner,
    corrupt_fragment,
    resume_campaign,
)
from repro.exec.cli import main as exec_main
from repro.exec.worker import open_shared_cache
from repro.io.columnar import (
    COLUMNAR_MAGIC,
    concat_fragment_columns,
    decode_failure_strings,
    encode_failure_codes,
    load_columnar_fragment,
    load_columnar_fragment_columns,
    peek_columnar_header,
    read_columnar,
    save_columnar_fragment,
)

SAMPLE_N = 120
SHARD_SIZE = 40


def cache_bytes(cache) -> str:
    """Canonical serialized form used for byte-identity assertions."""
    return json.dumps(cache.to_dict())


@pytest.fixture(scope="module")
def planner(benchmarks, gpus):
    selected = {name: benchmarks[name] for name in ("hotspot", "pnpoly")}
    return ShardPlanner(selected, {"RTX_3090": gpus["RTX_3090"]},
                        sample_size=SAMPLE_N, exhaustive_limit=5_000,
                        seed=41, shard_size=SHARD_SIZE)


@pytest.fixture(scope="module")
def plan(planner):
    return planner.plan()


@pytest.fixture(scope="module")
def reference(planner, plan):
    """Serial no-checkpoint caches: what every columnar path must reproduce."""
    caches = SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
    return {key: cache_bytes(cache) for key, cache in caches.items()}


@pytest.fixture(scope="module")
def campaign_cache(planner, plan):
    """One executed campaign cache (hotspot / RTX 3090), reused across tests."""
    caches = SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                                  gpus=planner.gpus)
    return caches[("hotspot", "RTX_3090")]


def columnar_copy(cache, tmp_path, name="cache.col", mmap=True):
    path = tmp_path / name
    cache.to_columnar(path)
    return EvaluationCache.from_columnar(path, space=cache.space, mmap=mmap)


class TestCacheRoundTrip:
    def test_json_bytes_identical_after_columnar_round_trip(self, campaign_cache,
                                                            tmp_path):
        loaded = columnar_copy(campaign_cache, tmp_path)
        assert cache_bytes(loaded) == cache_bytes(campaign_cache)

    def test_round_trip_without_live_space_rebuilds_from_header(self,
                                                                campaign_cache,
                                                                tmp_path):
        path = tmp_path / "cache.col"
        campaign_cache.to_columnar(path)
        loaded = EvaluationCache.from_columnar(path)
        assert cache_bytes(loaded) == cache_bytes(campaign_cache)

    def test_re_save_is_byte_identical(self, campaign_cache, tmp_path):
        first = tmp_path / "a.col"
        campaign_cache.to_columnar(first)
        loaded = EvaluationCache.from_columnar(first, space=campaign_cache.space)
        second = tmp_path / "b.col"
        loaded.to_columnar(second)
        assert first.read_bytes() == second.read_bytes()

    def test_loaded_cache_stays_lazy_through_index_replay(self, campaign_cache,
                                                          tmp_path):
        loaded = columnar_copy(campaign_cache, tmp_path)
        table = loaded.index_table()
        reference_table = campaign_cache.index_table()
        probe = np.array([obs.evaluation_index for obs in
                          campaign_cache.observations[:7]])
        indices = np.array([campaign_cache.space.index_of(obs.config)
                            for obs in campaign_cache.observations[:7]])
        values, failure, found = table.lookup(indices)
        ref_values, ref_failure, ref_found = reference_table.lookup(indices)
        np.testing.assert_array_equal(values, ref_values)
        np.testing.assert_array_equal(failure, ref_failure)
        np.testing.assert_array_equal(found, ref_found)
        # index replay must not have forced dict rehydration
        assert loaded._lazy is not None
        assert not loaded._store
        assert probe.size  # the probe really exercised rows

    def test_len_and_counters_lazy(self, campaign_cache, tmp_path):
        loaded = columnar_copy(campaign_cache, tmp_path)
        assert len(loaded) == len(campaign_cache)
        assert loaded.num_valid == campaign_cache.num_valid
        assert loaded.num_invalid == campaign_cache.num_invalid
        assert loaded._lazy is not None  # counters never materialize

    def test_mutation_after_mmap_load_copies_columns(self, campaign_cache,
                                                     tmp_path):
        path = tmp_path / "cache.col"
        campaign_cache.to_columnar(path)
        before = path.read_bytes()
        loaded = EvaluationCache.from_columnar(path, space=campaign_cache.space)
        extra = campaign_cache.observations[0]
        config = dict(extra.config)
        loaded.add(config, 0.5, valid=True)
        assert loaded.lookup(config).value == 0.5
        assert path.read_bytes() == before  # the mapped file never changes

    def test_best_and_statistics_match(self, campaign_cache, tmp_path):
        loaded = columnar_copy(campaign_cache, tmp_path)
        assert loaded.best().value == campaign_cache.best().value
        assert loaded.statistics() == campaign_cache.statistics()

    def test_non_campaign_cache_refuses_columnar(self, tmp_path):
        space = SearchSpace([Parameter("x", (1, 2, 3))], name="toy")
        cache = EvaluationCache("toy", "SIM", space)
        cache.add({"x": 2}, 1.0)
        cache.add({"x": 1}, 2.0)
        # overwrite breaks the evaluation_index == row invariant
        cache.add({"x": 2}, 3.0)
        with pytest.raises(SerializationError, match="JSON"):
            cache.to_columnar(tmp_path / "bad.col")


class TestIntegrity:
    @pytest.mark.parametrize("mode", ["truncate", "bitflip", "tamper"])
    def test_cache_file_damage_detected(self, campaign_cache, tmp_path, mode):
        path = tmp_path / "cache.col"
        campaign_cache.to_columnar(path)
        corrupt_fragment(path, mode)
        with pytest.raises(FragmentIntegrityError):
            EvaluationCache.from_columnar(path, space=campaign_cache.space)

    def test_bitflip_any_column_detected(self, campaign_cache, tmp_path):
        path = tmp_path / "cache.col"
        campaign_cache.to_columnar(path)
        pristine = path.read_bytes()
        header = peek_columnar_header(path)
        assert {entry["name"] for entry in header["columns"]} == {
            "index", "value", "code"}
        for entry in header["columns"]:
            buffer = bytearray(pristine)
            buffer[int(entry["offset"])] ^= 0x10
            path.write_bytes(bytes(buffer))
            with pytest.raises(FragmentIntegrityError):
                read_columnar(path)

    def test_wrong_magic_and_version(self, campaign_cache, tmp_path):
        path = tmp_path / "cache.col"
        campaign_cache.to_columnar(path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTMAGIC"
        path.write_bytes(bytes(data))
        with pytest.raises(SerializationError):
            peek_columnar_header(path)
        data = bytearray(campaign_cache.to_columnar(path).read_bytes())
        data[8] = 99  # version little-endian low byte
        path.write_bytes(bytes(data))
        with pytest.raises(SerializationError, match="version"):
            peek_columnar_header(path)

    def test_short_file_is_integrity_error(self, tmp_path):
        path = tmp_path / "stub.col"
        path.write_bytes(COLUMNAR_MAGIC[:4])
        with pytest.raises(FragmentIntegrityError):
            peek_columnar_header(path)

    def test_verify_false_skips_checksums(self, campaign_cache, tmp_path):
        path = tmp_path / "cache.col"
        campaign_cache.to_columnar(path)
        corrupt_fragment(path, "tamper")
        loaded = EvaluationCache.from_columnar(path, space=campaign_cache.space,
                                               verify=False)
        assert len(loaded) == len(campaign_cache)

    def test_out_of_range_failure_code_detected(self):
        with pytest.raises(FragmentIntegrityError):
            decode_failure_strings(np.array([5], dtype=np.int32), ["only-slot"])


class TestFragmentsAndMerge:
    def _rows(self, seed, n=25):
        rng = np.random.default_rng(seed)
        rows = []
        for i in range(n):
            if rng.random() < 0.3:
                rows.append((float("inf"), False, f"err-{int(rng.integers(3))}"))
            else:
                rows.append((float(rng.random()), True, ""))
        return rows

    def test_fragment_round_trip(self, tmp_path):
        shard = {"shard_id": 3, "benchmark": "hotspot", "gpu": "RTX_3090",
                 "start": 0, "stop": 25}
        rows = self._rows(0)
        path = save_columnar_fragment(tmp_path / "frag.col", shard, rows)
        got_shard, got_rows = load_columnar_fragment(path)
        assert got_shard == shard
        assert got_rows == rows

    def test_concat_matches_row_concat(self, tmp_path):
        parts = [self._rows(seed) for seed in range(4)]
        columns = []
        for i, rows in enumerate(parts):
            path = save_columnar_fragment(
                tmp_path / f"frag_{i}.col",
                {"shard_id": i, "start": i, "stop": i + 1}, rows)
            _, values, codes, errors = load_columnar_fragment_columns(path)
            columns.append((values, codes, errors))
        values, codes, errors = concat_fragment_columns(columns)
        valid, messages = decode_failure_strings(codes, errors)
        flat = [row for rows in parts for row in rows]
        assert [(v, bool(ok), msg) for v, ok, msg in
                zip(values.tolist(), valid.tolist(), messages)] == flat

    def test_merged_error_table_matches_single_shard_encoding(self, tmp_path):
        # Two fragments interning the same strings in different slot orders must
        # merge to the first-occurrence table a single serial shard would build.
        rows_a = [(float("inf"), False, "oom"), (1.0, True, "")]
        rows_b = [(float("inf"), False, "timeout"), (float("inf"), False, "oom")]
        columns = []
        for i, rows in enumerate((rows_b, rows_a)):
            path = save_columnar_fragment(tmp_path / f"f{i}.col",
                                          {"shard_id": i}, rows)
            _, values, codes, errors = load_columnar_fragment_columns(path)
            columns.append((values, codes, errors))
        # merge in evaluation order b-then-a
        _, _, merged = concat_fragment_columns(columns)
        expected_codes, expected_table = encode_failure_codes(
            [v for _, v, _ in rows_b + rows_a],
            [e for _, _, e in rows_b + rows_a])
        assert merged == expected_table

    def test_checkpointed_run_matches_reference(self, planner, plan, reference,
                                                tmp_path):
        store = CheckpointStore(tmp_path / "ck", fragment_format="columnar")
        caches = SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                                      gpus=planner.gpus, checkpoint=store)
        assert {key: cache_bytes(c) for key, c in caches.items()} == reference

    def test_resume_merges_columns_byte_identically(self, planner, plan,
                                                    reference, tmp_path):
        directory = tmp_path / "ck"
        SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                             gpus=planner.gpus,
                             checkpoint=CheckpointStore(directory,
                                                        fragment_format="columnar"))
        # fresh store auto-detects columnar from the manifest
        store = CheckpointStore(directory)
        assert store.fragment_format == "columnar"
        caches = resume_campaign(store, executor=SerialExecutor())
        for key, cache in caches.items():
            assert cache._lazy is not None  # merged straight from columns
            assert cache_bytes(cache) == reference[key]

    def test_merge_is_shard_order_independent(self, planner, plan, reference,
                                              tmp_path):
        # Complete the shards in reverse order; the merged bytes must not care.
        directory = tmp_path / "ck"
        store = CheckpointStore(directory, fragment_format="columnar")
        store.initialize(plan)
        indices = {unit.key: planner.unit_indices(unit) for unit in plan.units}
        for shard in reversed(plan.shards):
            unit = next(u for u in plan.units if u.key == shard.unit_key)
            benchmark = planner.benchmarks[shard.benchmark]
            configs = benchmark.space.configs_at(
                indices[unit.key][shard.start:shard.stop])
            rows = benchmark.evaluate_batch(planner.gpus[shard.gpu], configs,
                                            with_noise=unit.with_noise)
            store.save_shard(shard, rows)
        caches = resume_campaign(CheckpointStore(directory),
                                 executor=SerialExecutor())
        assert {key: cache_bytes(c) for key, c in caches.items()} == reference

    def test_damaged_columnar_fragment_heals_on_resume(self, planner, plan,
                                                       reference, tmp_path):
        directory = tmp_path / "ck"
        SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                             gpus=planner.gpus,
                             checkpoint=CheckpointStore(directory,
                                                        fragment_format="columnar"))
        victim = sorted(directory.glob("shard_*.col"))[1]
        corrupt_fragment(victim, "tamper")
        caches = resume_campaign(CheckpointStore(directory),
                                 executor=SerialExecutor())
        assert {key: cache_bytes(c) for key, c in caches.items()} == reference

    def test_format_conflict_refused(self, planner, plan, tmp_path):
        directory = tmp_path / "ck"
        SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                             gpus=planner.gpus,
                             checkpoint=CheckpointStore(directory,
                                                        fragment_format="columnar"))
        store = CheckpointStore(directory, fragment_format="json")
        with pytest.raises(SerializationError, match="one format per directory"):
            store.initialize(plan)

    def test_bad_format_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, fragment_format="parquet")

    def test_json_manifest_bytes_unchanged(self, planner, plan, tmp_path):
        # The default JSON checkpoint must not grow a fragment_format key.
        directory = tmp_path / "ck"
        store = CheckpointStore(directory)
        store.initialize(plan)
        manifest = json.loads((directory / "manifest.json").read_text())
        assert "fragment_format" not in manifest


class TestHypothesisFuzz:
    def test_fragment_round_trip_fuzz(self, tmp_path):
        hypothesis = pytest.importorskip("hypothesis")
        given, settings, st = (hypothesis.given, hypothesis.settings,
                               hypothesis.strategies)

        errors = st.sampled_from(["", "oom", "время вышло", "制約違反", "a" * 100])
        row = st.one_of(
            st.tuples(st.floats(min_value=0.0, max_value=1e9,
                                allow_nan=False, allow_infinity=False),
                      st.just(True), st.just("")),
            st.tuples(st.just(float("inf")), st.just(False), errors),
            # valid row carrying a non-empty note (negative-code encoding)
            st.tuples(st.floats(min_value=0.0, max_value=1e9,
                                allow_nan=False, allow_infinity=False),
                      st.just(True), errors),
        )

        @settings(max_examples=60, deadline=None)
        @given(rows=st.lists(row, min_size=0, max_size=40),
               shard_id=st.integers(min_value=0, max_value=10_000))
        def round_trips(rows, shard_id):
            path = tmp_path / f"fuzz_{shard_id}.col"
            shard = {"shard_id": shard_id, "start": 0, "stop": len(rows)}
            save_columnar_fragment(path, shard, rows)
            got_shard, got_rows = load_columnar_fragment(path)
            assert got_shard == shard
            assert got_rows == rows
            path.unlink()

        round_trips()

    def test_rejects_nan_and_negative_infinity(self, tmp_path):
        for poison in (float("nan"), float("-inf")):
            with pytest.raises(SerializationError):
                save_columnar_fragment(tmp_path / "bad.col", {"shard_id": 0},
                                       [(poison, True, "")])


class TestSharedWorkerCache:
    def test_open_shared_cache_memoizes(self, campaign_cache, tmp_path):
        path = tmp_path / "warm.col"
        campaign_cache.to_columnar(path)
        first = open_shared_cache(path)
        second = open_shared_cache(path)
        assert first is second
        assert cache_bytes(first) == cache_bytes(campaign_cache)


class TestCli:
    def _run(self, *args):
        out = io.StringIO()
        code = exec_main(list(args), out=out)
        return code, out.getvalue()

    def test_run_resume_doctor_columnar(self, tmp_path):
        ck, out_dir = tmp_path / "ck", tmp_path / "out"
        code, text = self._run(
            "run", "--benchmarks", "pnpoly", "--gpus", "RTX_3090",
            "--sample-size", "60", "--shard-size", "20",
            "--checkpoint-dir", str(ck), "--output-dir", str(out_dir),
            "--cache-format", "columnar")
        assert code == 0, text
        outputs = sorted(out_dir.glob("*.col"))
        assert outputs and sorted(ck.glob("shard_*.col"))

        # doctor: plant stale tmp litter + damage a fragment
        (ck / "shard_x.4242.cafef00d.tmp").write_text("half-written")
        corrupt_fragment(sorted(ck.glob("shard_*.col"))[0], "bitflip")
        code, text = self._run("doctor", "--checkpoint-dir", str(ck))
        assert code == 1
        assert "stale tmp" in text and "damaged" in text
        code, text = self._run("doctor", "--checkpoint-dir", str(ck), "--fix")
        assert code == 0
        assert "swept" in text
        assert not list(ck.glob("*.tmp"))

        # resume re-executes the healed shard and reproduces the same bytes
        out2 = tmp_path / "out2"
        code, text = self._run("resume", "--checkpoint-dir", str(ck),
                               "--output-dir", str(out2))
        assert code == 0, text
        assert outputs[0].read_bytes() == (out2 / outputs[0].name).read_bytes()

    def test_columnar_output_refuses_compress(self, tmp_path):
        code, text = self._run(
            "run", "--benchmarks", "pnpoly", "--gpus", "RTX_3090",
            "--sample-size", "30", "--output-dir", str(tmp_path / "out"),
            "--cache-format", "columnar", "--compress")
        assert code != 0

    def test_doctor_clean_checkpoint_exits_zero(self, tmp_path):
        ck = tmp_path / "ck"
        code, text = self._run(
            "run", "--benchmarks", "pnpoly", "--gpus", "RTX_3090",
            "--sample-size", "30", "--checkpoint-dir", str(ck),
            "--cache-format", "columnar")
        assert code == 0, text
        code, text = self._run("doctor", "--checkpoint-dir", str(ck))
        assert code == 0, text
        assert "0 stale tmp" in text


def test_writes_never_leave_tmp_litter(campaign_cache, tmp_path):
    campaign_cache.to_columnar(tmp_path / "cache.col")
    shard = {"shard_id": 0, "start": 0, "stop": 1}
    save_columnar_fragment(tmp_path / "frag.col", shard, [(1.0, True, "")])
    assert not list(tmp_path.glob("*.tmp"))
