"""Unit tests for the evaluation cache and the persistence layer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.cache import EvaluationCache
from repro.core.constraints import ConstraintSerializationWarning, ConstraintSet
from repro.core.errors import CacheMissError, ReproError, SerializationError
from repro.core.parameter import Parameter
from repro.core.result import Observation, TuningResult
from repro.core.searchspace import SearchSpace
from repro.io.cachefile import load_cache, save_cache
from repro.io.results_io import load_results, save_results


@pytest.fixture()
def toy_cache():
    space = SearchSpace([Parameter("x", (1, 2, 3)), Parameter("y", (1, 2))], name="toy")
    cache = EvaluationCache("toy", "SIM_GPU", space, exhaustive=True)
    for config in space.enumerate_all():
        value = float(config["x"] * 2 + config["y"])
        cache.add(config, value)
    return cache


class TestEvaluationCache:
    def test_lengths_and_lookup(self, toy_cache):
        assert len(toy_cache) == 6
        assert toy_cache.num_valid == 6
        obs = toy_cache.lookup({"x": 1, "y": 1})
        assert obs.value == 3.0
        assert {"x": 1, "y": 1} in toy_cache

    def test_lookup_miss_raises(self, toy_cache):
        with pytest.raises(CacheMissError):
            toy_cache.lookup({"x": 99, "y": 1})
        assert toy_cache.get({"x": 99, "y": 1}) is None

    def test_statistics(self, toy_cache):
        stats = toy_cache.statistics()
        assert stats["best"] == 3.0
        assert stats["worst"] == 8.0
        assert stats["valid"] == 6
        assert toy_cache.optimum() == 3.0
        assert toy_cache.best().config == {"x": 1, "y": 1}
        assert toy_cache.worst().value == 8.0
        assert toy_cache.median() == pytest.approx(np.median(toy_cache.values()))

    def test_invalid_entries_excluded_from_stats(self, toy_cache):
        toy_cache.add({"x": 3, "y": 2}, math.inf, valid=False, error="launch failed")
        assert toy_cache.num_invalid == 1
        assert toy_cache.num_valid == 5
        assert math.isfinite(toy_cache.values().max())

    def test_overwrite_same_config(self, toy_cache):
        toy_cache.add({"x": 1, "y": 1}, 100.0)
        assert toy_cache.lookup({"x": 1, "y": 1}).value == 100.0
        assert len(toy_cache) == 6

    def test_feature_matrix_alignment(self, toy_cache):
        X, y = toy_cache.to_feature_matrix()
        assert X.shape == (6, 2)
        assert y.shape == (6,)
        # Column order follows the space's parameter order (x, y).
        np.testing.assert_allclose(y, X[:, 0] * 2 + X[:, 1])

    def test_empty_cache_errors(self):
        space = SearchSpace([Parameter("x", (1,))])
        cache = EvaluationCache("b", "g", space)
        with pytest.raises(ReproError):
            cache.best()
        with pytest.raises(ReproError):
            cache.median()
        with pytest.raises(ReproError):
            cache.to_feature_matrix()

    def test_replay_problem(self, toy_cache):
        problem = toy_cache.to_problem()
        assert problem.evaluate({"x": 1, "y": 1}).value == 3.0
        missing = problem.evaluate({"x": 3, "y": 2} if {"x": 3, "y": 2} not in toy_cache
                                   else {"x": 99, "y": 1})
        # Unknown configurations become failures, never crashes.
        assert missing.is_failure or not missing.is_failure

    def test_replay_problem_non_strict(self, toy_cache):
        problem = toy_cache.to_problem(strict=False)
        # A member configuration missing from the cache is reported invalid.
        obs = problem.evaluate({"x": 2, "y": 2})
        assert obs.value == toy_cache.lookup({"x": 2, "y": 2}).value

    def test_dict_round_trip(self, toy_cache):
        restored = EvaluationCache.from_dict(toy_cache.to_dict())
        assert len(restored) == len(toy_cache)
        assert restored.optimum() == toy_cache.optimum()
        assert restored.benchmark == "toy" and restored.gpu == "SIM_GPU"
        assert restored.exhaustive


class TestCacheFiles:
    def test_save_load_json(self, toy_cache, tmp_path):
        path = save_cache(toy_cache, tmp_path / "toy.json")
        restored = load_cache(path)
        assert len(restored) == len(toy_cache)
        assert restored.optimum() == toy_cache.optimum()

    def test_save_load_gzip(self, toy_cache, tmp_path):
        path = save_cache(toy_cache, tmp_path / "toy.json.gz")
        restored = load_cache(path)
        assert len(restored) == len(toy_cache)

    def test_load_with_live_space(self, toy_cache, tmp_path):
        path = save_cache(toy_cache, tmp_path / "toy.json")
        restored = load_cache(path, space=toy_cache.space)
        assert restored.space is toy_cache.space

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_cache(tmp_path / "nope.json")

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"something\": 1}")
        with pytest.raises(SerializationError):
            load_cache(bad)

    def test_save_is_byte_deterministic(self, toy_cache, tmp_path):
        # Atomic writes + gzip mtime=0: the same cache always produces the same
        # bytes, including through the compressed path.
        a = save_cache(toy_cache, tmp_path / "a.json.gz")
        b = save_cache(toy_cache, tmp_path / "b.json.gz")
        assert a.read_bytes() == b.read_bytes()


class TestCallableConstraintRoundTrip:
    """Callable constraints cannot survive JSON; the degradation must be loud."""

    def _cache_with_callable_constraint(self):
        space = SearchSpace(
            [Parameter("x", (1, 2, 3, 4)), Parameter("y", (1, 2))],
            ConstraintSet([lambda c: c["x"] * c["y"] <= 6, "x != 3"]),
            name="mixed")
        cache = EvaluationCache("mixed", "SIM_GPU", space)
        for config in space.enumerate(valid_only=True):
            cache.add(config, float(config["x"] + config["y"]))
        return space, cache

    @pytest.mark.parametrize("suffix", [".json", ".json.gz"])
    def test_load_without_space_warns_and_drops_callable(self, tmp_path, suffix):
        space, cache = self._cache_with_callable_constraint()
        path = save_cache(cache, tmp_path / f"mixed{suffix}")
        with pytest.warns(ConstraintSerializationWarning, match="callable constraint"):
            restored = load_cache(path)
        # The string constraint survives, the callable is gone -- explicitly.
        assert [c.expression for c in restored.space.constraints] == ["x != 3"]
        assert len(restored) == len(cache)

    def test_load_with_live_space_keeps_callable(self, tmp_path, recwarn):
        space, cache = self._cache_with_callable_constraint()
        path = save_cache(cache, tmp_path / "mixed.json.gz")
        restored = load_cache(path, space=space)
        assert restored.space is space
        assert len(restored.space.constraints) == 2
        assert not [w for w in recwarn.list
                    if isinstance(w.message, ConstraintSerializationWarning)]

    def test_callable_flag_serialized(self):
        space, _ = self._cache_with_callable_constraint()
        entries = space.constraints.to_list()
        assert entries[0].get("callable") is True
        assert "callable" not in entries[1]

    def test_legacy_lambda_name_warns_instead_of_crashing(self):
        # Old cache files carry "<lambda>" without the callable flag; loading them
        # must warn and drop, not raise SyntaxError.
        with pytest.warns(ConstraintSerializationWarning, match="unparseable"):
            restored = ConstraintSet.from_list(
                [{"expression": "<lambda>", "description": ""}])
        assert len(restored) == 0

    def test_legacy_named_callable_warns_instead_of_degrading(self):
        # A named callable serialized pre-flag as {"expression": "power_of_two"}
        # parses as a Name expression referencing no parameter; space loading must
        # drop it loudly rather than keep a constraint that raises on first use.
        data = {
            "name": "legacy",
            "parameters": [Parameter("x", (1, 2, 4)).to_dict()],
            "constraints": [{"expression": "power_of_two", "description": ""},
                            {"expression": "x <= 4", "description": ""}],
        }
        with pytest.warns(ConstraintSerializationWarning, match="power_of_two"):
            space = SearchSpace.from_dict(data)
        assert [c.expression for c in space.constraints] == ["x <= 4"]
        assert space.is_valid({"x": 2})

    def test_bare_parameter_name_expression_survives_round_trip(self):
        # Truthiness-of-a-parameter expressions are legitimate bare Names and must
        # not be confused with degraded callables.
        space = SearchSpace([Parameter("flag", (0, 1)), Parameter("x", (1, 2))],
                            ConstraintSet(["flag"]))
        restored = SearchSpace.from_dict(space.to_dict())
        assert [c.expression for c in restored.constraints] == ["flag"]
        assert not restored.is_valid({"flag": 0, "x": 1})

    def test_written_files_honor_umask(self, toy_cache, tmp_path):
        import os as _os
        path = save_cache(toy_cache, tmp_path / "perm.json")
        umask = _os.umask(0)
        _os.umask(umask)
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)


class TestResultFiles:
    def _result(self):
        result = TuningResult(benchmark="b", gpu="g", tuner="t", seed=1)
        result.record(Observation({"x": 1}, 2.0, evaluation_index=0))
        result.record(Observation({"x": 2}, 1.0, evaluation_index=1))
        return result

    def test_save_load_single(self, tmp_path):
        path = save_results(self._result(), tmp_path / "run.json")
        restored = load_results(path)
        assert len(restored) == 1
        assert restored[0].best_value == 1.0

    def test_save_load_many_gzip(self, tmp_path):
        path = save_results([self._result(), self._result()], tmp_path / "runs.json.gz")
        restored = load_results(path)
        assert len(restored) == 2

    def test_load_missing(self, tmp_path):
        with pytest.raises(SerializationError):
            load_results(tmp_path / "missing.json")


class TestGzipSniffing:
    """Compression is detected by content (the ``1f 8b`` magic), never by suffix."""

    def test_gzipped_file_with_plain_suffix_reads(self, toy_cache, tmp_path):
        gz = save_cache(toy_cache, tmp_path / "toy.json.gz")
        disguised = tmp_path / "toy.json"
        disguised.write_bytes(gz.read_bytes())
        restored = load_cache(disguised)
        assert len(restored) == len(toy_cache)

    def test_gzipped_file_with_odd_cased_suffix_reads(self, toy_cache, tmp_path):
        gz = save_cache(toy_cache, tmp_path / "toy.json.gz")
        odd = tmp_path / "toy.json.GZ"
        odd.write_bytes(gz.read_bytes())
        restored = load_cache(odd)
        assert len(restored) == len(toy_cache)

    def test_mislabelled_gz_names_the_mismatch(self, toy_cache, tmp_path):
        plain = save_cache(toy_cache, tmp_path / "toy.json")
        liar = tmp_path / "toy.json.gz"
        liar.write_bytes(plain.read_bytes())
        with pytest.raises(SerializationError, match="gzip magic"):
            load_cache(liar)


class TestFailureCounters:
    """``num_valid``/``num_invalid`` are O(1) running counters, kept exact by ``add``."""

    def _scan(self, cache):
        failures = sum(1 for obs in cache.observations if obs.is_failure)
        return len(cache) - failures, failures

    def test_counters_match_scan(self, toy_cache):
        assert (toy_cache.num_valid, toy_cache.num_invalid) == self._scan(toy_cache)
        toy_cache.add({"x": 1, "y": 2}, math.inf, valid=False, error="oom")
        assert (toy_cache.num_valid, toy_cache.num_invalid) == self._scan(toy_cache)

    def test_overwrite_valid_with_invalid(self, toy_cache):
        config = {"x": 1, "y": 1}
        assert not toy_cache.lookup(config).is_failure
        toy_cache.add(config, math.inf, valid=False, error="oom")
        assert (toy_cache.num_valid, toy_cache.num_invalid) == self._scan(toy_cache)
        assert toy_cache.num_invalid == 1

    def test_overwrite_invalid_with_valid(self, toy_cache):
        config = {"x": 2, "y": 2}
        toy_cache.add(config, math.inf, valid=False, error="oom")
        toy_cache.add(config, 4.0, valid=True)
        assert (toy_cache.num_valid, toy_cache.num_invalid) == self._scan(toy_cache)
        assert toy_cache.num_invalid == 0

    def test_overwrite_invalid_with_invalid(self, toy_cache):
        config = {"x": 3, "y": 1}
        toy_cache.add(config, math.inf, valid=False, error="oom")
        toy_cache.add(config, math.inf, valid=False, error="timeout")
        assert (toy_cache.num_valid, toy_cache.num_invalid) == self._scan(toy_cache)
        assert toy_cache.num_invalid == 1

    def test_counters_survive_dict_round_trip(self, toy_cache):
        toy_cache.add({"x": 1, "y": 2}, math.inf, valid=False, error="oom")
        restored = EvaluationCache.from_dict(toy_cache.to_dict(),
                                             space=toy_cache.space)
        assert restored.num_valid == toy_cache.num_valid
        assert restored.num_invalid == toy_cache.num_invalid
