"""Tests of the optimizer portfolio and the shared ask/tell interface."""

from __future__ import annotations

import math

import pytest

from repro.core.budget import Budget
from repro.core.parameter import Parameter
from repro.core.problem import TuningProblem
from repro.core.runner import run_matrix, run_repetitions, run_tuning
from repro.core.searchspace import SearchSpace
from repro.tuners import (
    DifferentialEvolution,
    GeneticAlgorithm,
    GreedyILS,
    GridSearch,
    LocalSearch,
    ParticleSwarm,
    PortfolioTuner,
    RandomSearch,
    SimulatedAnnealing,
    SurrogateSearch,
    all_tuners,
)
from repro.tuners.adapters import (
    KTTAdapter,
    KernelTunerAdapter,
    OptunaAdapter,
    SMAC3Adapter,
    available_external_frameworks,
    objective_callback,
    space_to_choices,
)

ALL_TUNER_CLASSES = [
    RandomSearch,
    GridSearch,
    LocalSearch,
    GreedyILS,
    SimulatedAnnealing,
    GeneticAlgorithm,
    DifferentialEvolution,
    ParticleSwarm,
    SurrogateSearch,
]


def _quadratic_problem():
    """A small separable problem with a unique known optimum at (16, 4, 8)."""
    space = SearchSpace(
        [Parameter("a", (1, 2, 4, 8, 16)),
         Parameter("b", (1, 2, 3, 4, 5, 6)),
         Parameter("c", (1, 2, 4, 8, 16, 32))],
        ["a * b <= 64"],
        name="quadratic",
    )

    def evaluate(cfg):
        return 1.0 + (cfg["a"] - 16) ** 2 + (cfg["b"] - 4) ** 2 + (cfg["c"] - 8) ** 2

    return TuningProblem("quadratic", space, evaluate, gpu="SIM")


@pytest.fixture()
def quadratic():
    return _quadratic_problem()


@pytest.fixture()
def pnpoly_problem(pnpoly, gpu_3090):
    return pnpoly.problem(gpu_3090)


class TestTunerContract:
    @pytest.mark.parametrize("tuner_cls", ALL_TUNER_CLASSES)
    def test_respects_budget(self, tuner_cls, quadratic):
        result = run_tuning(tuner_cls(seed=0), quadratic, max_evaluations=30)
        assert result.num_evaluations == 30

    @pytest.mark.parametrize("tuner_cls", ALL_TUNER_CLASSES)
    def test_finds_valid_configuration(self, tuner_cls, quadratic):
        result = run_tuning(tuner_cls(seed=1), quadratic, max_evaluations=40)
        assert result.num_valid > 0
        assert quadratic.space.is_valid(result.best_config)
        assert math.isfinite(result.best_value)

    @pytest.mark.parametrize("tuner_cls", ALL_TUNER_CLASSES)
    def test_reproducible_given_seed(self, tuner_cls):
        a = run_tuning(tuner_cls(seed=7), _quadratic_problem(), max_evaluations=25)
        b = run_tuning(tuner_cls(seed=7), _quadratic_problem(), max_evaluations=25)
        assert [o.value for o in a] == [o.value for o in b]

    @pytest.mark.parametrize("tuner_cls",
                             [cls for cls in ALL_TUNER_CLASSES if cls is not GridSearch])
    def test_beats_single_random_draw_on_average(self, tuner_cls, quadratic):
        # GridSearch is excluded: a truncated lexicographic sweep only covers the
        # first corner of the space by design.
        result = run_tuning(tuner_cls(seed=3), quadratic, max_evaluations=60)
        # With 60 evaluations on a ~150-point valid space every optimizer should get
        # far below the space's median objective (~200) and close to the optimum of 1.
        assert result.best_value <= 40.0

    @pytest.mark.parametrize("tuner_cls", ALL_TUNER_CLASSES)
    def test_result_metadata_filled(self, tuner_cls, quadratic):
        result = run_tuning(tuner_cls(seed=0), quadratic, max_evaluations=10)
        assert result.benchmark == "quadratic"
        assert result.gpu == "SIM"
        assert result.tuner

    def test_evaluate_outside_tune_raises(self):
        with pytest.raises(RuntimeError):
            RandomSearch(seed=0).evaluate({"a": 1})


class TestSpecificTuners:
    def test_grid_search_is_deterministic_enumeration(self, quadratic):
        result = run_tuning(GridSearch(), quadratic, max_evaluations=50)
        values = [o.value for o in result.observations]
        again = run_tuning(GridSearch(), _quadratic_problem(), max_evaluations=50)
        assert values == [o.value for o in again.observations]

    def test_grid_search_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            GridSearch(stride=0)

    def test_random_search_without_replacement_unique(self, quadratic):
        result = run_tuning(RandomSearch(seed=0), quadratic, max_evaluations=60)
        assert result.unique_configs() == result.num_evaluations

    def test_random_search_exhausts_small_space(self):
        space = SearchSpace([Parameter("a", (1, 2, 3)), Parameter("b", (1, 2))])
        problem = TuningProblem("tiny", space, lambda c: float(c["a"] + c["b"]))
        result = run_tuning(RandomSearch(seed=0), problem, max_evaluations=100)
        # Only 6 unique configurations exist; the tuner stops instead of spinning.
        assert result.num_evaluations == 6

    def test_local_search_finds_local_optimum_of_unimodal_problem(self, quadratic):
        result = run_tuning(LocalSearch(seed=2, strategy="best"), quadratic,
                            max_evaluations=120)
        assert result.best_value == pytest.approx(1.0)

    def test_local_search_invalid_strategy(self):
        with pytest.raises(ValueError):
            LocalSearch(strategy="sideways")

    def test_simulated_annealing_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealing(cooling_rate=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealing(initial_temperature=-1)

    def test_genetic_parameter_validation(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(population_size=1)
        with pytest.raises(ValueError):
            GeneticAlgorithm(mutation_rate=2.0)

    def test_differential_evolution_needs_four(self):
        with pytest.raises(ValueError):
            DifferentialEvolution(population_size=3)

    def test_pso_swarm_size_validation(self):
        with pytest.raises(ValueError):
            ParticleSwarm(swarm_size=1)

    def test_surrogate_uses_model_after_initial_samples(self, quadratic):
        tuner = SurrogateSearch(seed=0, initial_samples=10, batch_size=4, candidate_pool=60,
                                n_estimators=20)
        result = run_tuning(tuner, quadratic, max_evaluations=40)
        assert result.best_value <= 6.0

    def test_portfolio_combines_members(self, quadratic):
        portfolio = PortfolioTuner([RandomSearch(), LocalSearch(), GeneticAlgorithm()], seed=0)
        result = run_tuning(portfolio, quadratic, max_evaluations=45)
        assert result.num_evaluations == 45
        assert "portfolio" in result.tuner

    def test_portfolio_requires_members(self):
        with pytest.raises(ValueError):
            PortfolioTuner([])


class TestPortfolioBudgetSlice:
    """The portfolio's budget slice must satisfy the full bulk protocol."""

    def test_bulk_charges_reach_the_parent_budget(self):
        # Regression for the pre-fix hole: _BudgetSlice overrode charge() but
        # inherited Budget.charge_bulk, so a bulk-accounted member would have
        # charged the slice's own (unlimited) counters -- never the shared
        # parent, never the slice cap.
        from repro.tuners.portfolio import _BudgetSlice

        parent = Budget(max_evaluations=20)
        budget_slice = _BudgetSlice(parent, 10)
        budget_slice.charge_bulk(4, simulated_seconds=[0.1] * 4, new_configs=4)
        assert parent.evaluations_used == 4
        assert parent.unique_used == 4
        assert budget_slice._used_in_slice == 4
        assert budget_slice.remaining_evaluations == 6
        assert budget_slice.affordable_evaluations() == 6

    def test_bulk_charge_clamps_to_the_slice(self):
        from repro.core.errors import BudgetExhaustedError
        from repro.tuners.portfolio import _BudgetSlice

        parent = Budget(max_evaluations=100)
        budget_slice = _BudgetSlice(parent, 10)
        budget_slice.charge_bulk(10)  # exactly the slice
        assert budget_slice.exhausted and not parent.exhausted
        fresh = _BudgetSlice(Budget(max_evaluations=100), 10)
        with pytest.raises(BudgetExhaustedError):
            fresh.charge_bulk(11)
        assert fresh._parent.evaluations_used == 0  # nothing leaked through

    def test_scalar_charge_raises_when_slice_is_spent(self):
        from repro.core.errors import BudgetExhaustedError
        from repro.tuners.portfolio import _BudgetSlice

        budget_slice = _BudgetSlice(Budget(max_evaluations=100), 1)
        budget_slice.charge()
        with pytest.raises(BudgetExhaustedError):
            budget_slice.charge()

    def test_affordable_follows_the_narrower_limit(self):
        from repro.tuners.portfolio import _BudgetSlice

        parent = Budget(max_evaluations=6)
        budget_slice = _BudgetSlice(parent, 10)
        assert budget_slice.affordable_evaluations() == 6  # parent narrower
        assert _BudgetSlice(Budget(), 10).affordable_evaluations() == 10
        # A parent that cannot precompute a prefix poisons the slice too.
        seconds = Budget(max_simulated_seconds=1.0)
        assert _BudgetSlice(seconds, 10).affordable_evaluations() is None

    def test_bulk_member_charges_shared_budget_and_respects_slice(self,
                                                                  benchmarks,
                                                                  gpu_3090):
        # End to end: generation-batched members inside a portfolio on a
        # peekable replay problem take the bulk path against their slice.
        cache = benchmarks["gemm"].build_cache(gpu_3090, sample_size=300, seed=4)
        problem = cache.to_problem(strict=False)
        assert problem.peekable
        budget = Budget(max_evaluations=40)
        portfolio = PortfolioTuner([GeneticAlgorithm(population_size=6),
                                    DifferentialEvolution(population_size=6)],
                                   seed=0)
        result = portfolio.tune(problem, budget, seed=0)
        assert budget.evaluations_used == 40  # every charge hit the parent
        assert result.num_evaluations == 40


class TestPortfolioMemberFailures:
    class _Boom(RandomSearch):
        name = "boom"

        def _run(self, problem, budget, rng):
            raise RuntimeError("member exploded")

    class _SliceBurner(RandomSearch):
        name = "burner"

        def _run(self, problem, budget, rng):
            # Evaluate straight past the slice so the budget itself raises.
            for index in range(problem.space.cardinality):
                self.evaluate_index(index)
                self._budget.charge()  # force an over-slice charge

    def test_misbehaving_member_warns_and_run_continues(self, pnpoly, gpu_3090):
        portfolio = PortfolioTuner([self._Boom(), RandomSearch()], seed=0)
        budget = Budget(max_evaluations=20)
        with pytest.warns(RuntimeWarning, match="boom"):
            result = portfolio.tune(pnpoly.problem(gpu_3090), budget, seed=0)
        # The surviving member still ran its (and the failed member's) slice.
        assert result.num_evaluations == 20

    def test_budget_exhaustion_is_not_a_member_failure(self, pnpoly, gpu_3090,
                                                       recwarn):
        portfolio = PortfolioTuner([self._SliceBurner(), RandomSearch()], seed=0)
        budget = Budget(max_evaluations=20)
        result = portfolio.tune(pnpoly.problem(gpu_3090), budget, seed=0)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]
        # The burner's slice raised (half its charges were evaluation-free),
        # the remaining member still consumed everything left in the budget.
        assert budget.evaluations_used == 20
        assert result.num_evaluations == 15


class TestOnRealBenchmark:
    def test_all_registered_tuners_run_on_pnpoly(self, pnpoly_problem):
        for name, factory in all_tuners().items():
            pnpoly_problem.reset_cache()
            result = run_tuning(factory(seed=0), pnpoly_problem, max_evaluations=25)
            assert result.num_evaluations == 25, name
            assert result.num_valid > 0, name

    def test_tuners_improve_over_median_configuration(self, pnpoly, gpu_3090,
                                                      pnpoly_cache_3090):
        median = pnpoly_cache_3090.median()
        problem = pnpoly.problem(gpu_3090)
        for factory in (RandomSearch, GeneticAlgorithm, LocalSearch):
            problem.reset_cache()
            result = run_tuning(factory(seed=5), problem, max_evaluations=60)
            assert result.best_value < median

    def test_run_repetitions_and_matrix(self, pnpoly_problem):
        repetitions = run_repetitions(RandomSearch, pnpoly_problem, repetitions=3,
                                      max_evaluations=10, base_seed=0)
        assert len(repetitions) == 3
        assert all(r.num_evaluations == 10 for r in repetitions)
        assert len({tuple(o.value for o in r) for r in repetitions}) == 3

        matrix = run_matrix({"random": RandomSearch, "grid": GridSearch},
                            {"pnpoly": pnpoly_problem}, max_evaluations=8)
        assert set(matrix) == {("random", "pnpoly"), ("grid", "pnpoly")}


class TestBudgetSemantics:
    def test_simulated_time_budget_stops_early(self, pnpoly_problem):
        budget = Budget(max_simulated_seconds=0.05, compile_overhead_seconds=1e-3)
        result = run_tuning(RandomSearch(seed=0), pnpoly_problem, budget=budget)
        assert 0 < result.num_evaluations < 60

    def test_budget_object_is_not_mutated(self, quadratic):
        budget = Budget(max_evaluations=10)
        run_tuning(RandomSearch(seed=0), quadratic, budget=budget)
        assert budget.evaluations_used == 0  # the runner works on a copy


class TestAdapters:
    def test_space_to_choices(self, quadratic):
        choices = space_to_choices(quadratic)
        assert choices["a"] == [1, 2, 4, 8, 16]
        assert set(choices) == {"a", "b", "c"}

    def test_objective_callback_handles_invalid(self, quadratic):
        objective = objective_callback(quadratic)
        assert objective({"a": 16, "b": 4, "c": 8}) == pytest.approx(1.0)
        assert objective({"a": 16, "b": 6, "c": 8}) == math.inf  # violates a*b <= 64

    def test_frameworks_reported_unavailable_offline(self):
        availability = available_external_frameworks()
        assert set(availability) == {"optuna", "smac3", "kernel_tuner", "ktt"}
        # None of the external frameworks are installed in this environment.
        assert not any(availability.values())

    @pytest.mark.parametrize("adapter_cls", [OptunaAdapter, SMAC3Adapter,
                                             KernelTunerAdapter, KTTAdapter])
    def test_adapters_fall_back_to_in_repo_optimizers(self, adapter_cls, quadratic):
        result = run_tuning(adapter_cls(seed=0), quadratic, max_evaluations=20)
        assert result.num_evaluations == 20
        assert result.num_valid > 0
