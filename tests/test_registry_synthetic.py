"""Tests of the open benchmark registry and the synthetic scenario suite.

Three layers, mirroring the protections of ``tests/test_index_native.py`` and
``tests/test_exec.py``:

* **Registry contract** -- benchmarks register as *picklable specs* (never live
  objects), resolve from ``"module:factory"`` strings, and round-trip through JSON
  (which is what plan manifests store).
* **Differential harness** -- for every synthetic scenario family, the
  :class:`~repro.exec.executors.SerialExecutor` and
  :class:`~repro.exec.executors.ParallelExecutor` merge *byte-identical* caches, a
  checkpoint/resume round-trip rebuilt purely from manifest specs (nothing
  registered) matches byte for byte, and the dictionary and index evaluation paths
  agree observation for observation -- same values, same error strings.
* **Property-style fuzz** -- seeded :mod:`random` (no new dependencies) generates
  ~200 spaces of varying radices and constraint density and asserts the mixed-radix
  codec round-trips (``indices_to_digits``/``digits_to_indices``,
  ``encode_indices``/``decode_index``) and the hashed
  :meth:`~repro.core.cache.EvaluationCache.index_table` searchsorted path agree with
  the dense path and the dict store.
"""

from __future__ import annotations

import io
import json
import math
import os
import random

import numpy as np
import pytest

import repro.core.cache as cache_module
from repro.core.cache import EvaluationCache
from repro.core.errors import ReproError
from repro.core.parameter import Parameter
from repro.core.registry import (
    BenchmarkSpec,
    benchmark_spec,
    benchmark_suite,
    get_benchmark,
    register_benchmark,
    registered_benchmarks,
    temporary_benchmark,
    unregister_benchmark,
)
from repro.core.runner import run_matrix, run_tuning
from repro.core.searchspace import SearchSpace
from repro.exec import (
    CheckpointStore,
    ParallelExecutor,
    SerialExecutor,
    ShardPlanner,
    resume_campaign,
)
from repro.exec.cli import main as exec_main
from repro.kernels import synthetic
from repro.kernels.synthetic import FACTORY_SPEC, create_benchmark, scenario_specs, synthetic_suite

#: One scenario per structural corner: unconstrained, densely constrained with a
#: high failure rate, coupled family, and an explicit radix profile.
SCENARIOS: dict[str, dict] = {
    "syn_sep_plain": dict(family="separable", dimensions=3, seed=3,
                          constraint_density=0.0, failure_rate=0.0),
    "syn_sep_hard": dict(family="separable", dimensions=4, seed=11,
                         constraint_density=0.8, failure_rate=0.15),
    "syn_coupled": dict(family="coupled", dimensions=4, seed=7,
                        constraint_density=0.5, failure_rate=0.05),
    "syn_coupled_radix": dict(family="coupled", dimensions=3, seed=2,
                              radix_profile=[4, 3, 5], constraint_density=0.4,
                              failure_rate=0.1),
}

SHARD_SIZE = 25


def cache_bytes(cache) -> str:
    """Canonical serialized form used for byte-identity assertions."""
    return json.dumps(cache.to_dict())


def make_scenario(name: str):
    return create_benchmark(name=name, **SCENARIOS[name])


@pytest.fixture(scope="module")
def scenarios():
    return {name: make_scenario(name) for name in SCENARIOS}


@pytest.fixture()
def clean_registry():
    """Fail loudly if a test leaks registrations into the process-global registry."""
    before = set(registered_benchmarks())
    yield
    leaked = set(registered_benchmarks()) - before
    for name in leaked:
        unregister_benchmark(name)
    assert not leaked, f"test leaked benchmark registrations: {sorted(leaked)}"


# --------------------------------------------------------------------------- specs


class TestBenchmarkSpec:
    def test_parse_accepts_string_mapping_spec_and_callable(self):
        from_string = BenchmarkSpec.parse(FACTORY_SPEC, seed=4)
        from_mapping = BenchmarkSpec.parse({"factory": FACTORY_SPEC,
                                            "kwargs": {"seed": 4}})
        from_callable = BenchmarkSpec.parse(create_benchmark, seed=4)
        assert from_string == from_mapping == from_callable
        assert BenchmarkSpec.parse(from_string) is from_string

    def test_kwargs_are_canonicalized_through_json(self):
        spec = BenchmarkSpec(FACTORY_SPEC, {"radix_profile": (4, 3, 5)})
        assert spec.kwargs["radix_profile"] == [4, 3, 5]  # tuple -> list, like a manifest
        restored = BenchmarkSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec

    def test_non_json_kwargs_are_refused(self):
        with pytest.raises(ReproError, match="JSON-serializable"):
            BenchmarkSpec(FACTORY_SPEC, {"rng": object()})

    def test_malformed_factory_strings_are_refused(self):
        for bad in ("no_colon", ":attr", "module:", 123):
            with pytest.raises(ReproError):
                BenchmarkSpec.parse(bad)

    def test_unimportable_specs_fail_loudly(self):
        with pytest.raises(ReproError, match="cannot import"):
            BenchmarkSpec("no.such.module:factory").resolve()
        with pytest.raises(ReproError, match="no attribute"):
            BenchmarkSpec("repro.kernels.synthetic:no_such_factory").resolve()

    def test_lambdas_and_closures_are_refused(self):
        with pytest.raises(ReproError, match="picklable spec"):
            BenchmarkSpec.parse(lambda: None)

        def local_factory():  # pragma: no cover - never built
            return None

        with pytest.raises(ReproError, match="picklable spec"):
            BenchmarkSpec.parse(local_factory)

    def test_build_returns_a_fresh_benchmark(self):
        spec = BenchmarkSpec(FACTORY_SPEC, {"name": "b", "dimensions": 3, "seed": 1})
        a, b = spec.build(), spec.build()
        assert a is not b
        assert a.space.to_dict() == b.space.to_dict()

    def test_specs_pickle(self):
        import pickle

        spec = BenchmarkSpec(FACTORY_SPEC, {"seed": 9})
        assert pickle.loads(pickle.dumps(spec)) == spec


# ------------------------------------------------------------------ open registry


class TestOpenRegistry:
    def test_register_resolve_unregister_round_trip(self, clean_registry):
        spec = register_benchmark("my scenario", FACTORY_SPEC, name="my_scenario",
                                  family="coupled", dimensions=3, seed=5)
        assert registered_benchmarks() == {"my_scenario": spec}
        assert benchmark_spec("my_scenario") == spec
        # get_benchmark normalizes exactly like get_gpu: case, '-' and spaces.
        for alias in ("my_scenario", "MY-SCENARIO", "My Scenario"):
            assert get_benchmark(alias).name == "my_scenario"
        assert "my_scenario" in benchmark_suite()
        unregister_benchmark("My-Scenario")
        assert "my_scenario" not in benchmark_suite()

    def test_builtin_lookup_still_normalizes(self):
        assert get_benchmark("GEMM").name == "gemm"
        assert get_benchmark("Hot Spot".replace(" ", "")).name == "hotspot"

    def test_unknown_benchmark_error_lists_registered_customs(self, clean_registry):
        with temporary_benchmark("ghost_scn", FACTORY_SPEC, name="ghost_scn", seed=1):
            with pytest.raises(ReproError) as excinfo:
                get_benchmark("definitely_not_a_kernel")
            message = str(excinfo.value)
            assert "ghost_scn" in message
            assert "registered custom benchmarks" in message
            assert "gemm" in message

    def test_builtin_names_cannot_be_shadowed(self):
        with pytest.raises(ReproError, match="shadow"):
            register_benchmark("gemm", FACTORY_SPEC)

    def test_duplicate_registration_needs_overwrite(self, clean_registry):
        register_benchmark("dup_scn", FACTORY_SPEC, name="dup_scn", seed=1)
        try:
            with pytest.raises(ReproError, match="already registered"):
                register_benchmark("dup_scn", FACTORY_SPEC, name="dup_scn", seed=2)
            replaced = register_benchmark("dup_scn", FACTORY_SPEC, overwrite=True,
                                          name="dup_scn", seed=2)
            assert registered_benchmarks()["dup_scn"] is replaced
        finally:
            unregister_benchmark("dup_scn")

    def test_broken_factories_fail_at_registration(self, clean_registry):
        with pytest.raises(ReproError, match="unknown synthetic family"):
            register_benchmark("broken", FACTORY_SPEC, family="nonexistent")
        assert "broken" not in registered_benchmarks()

    def test_mislabeling_specs_fail_at_registration(self, clean_registry):
        # Caches and plan units carry the benchmark's own name; a spec whose
        # factory defaults to a different name would mislabel campaign data (and
        # two such registrations would share one noise/failure identity).
        with pytest.raises(ReproError, match="one identity"):
            register_benchmark("mislabeled_scn", FACTORY_SPEC, seed=1)
        assert "mislabeled_scn" not in registered_benchmarks()

    def test_unregister_unknown_name_lists_customs(self):
        with pytest.raises(ReproError, match="not registered"):
            unregister_benchmark("never_registered")

    def test_temporary_benchmark_restores_a_shadowed_registration(self,
                                                                  clean_registry):
        original = register_benchmark("shadow_scn", FACTORY_SPEC,
                                      name="shadow_scn", seed=1)
        try:
            with temporary_benchmark("shadow_scn", FACTORY_SPEC,
                                     name="shadow_scn", seed=2) as shadow:
                assert registered_benchmarks()["shadow_scn"] is shadow
            assert registered_benchmarks()["shadow_scn"] is original
        finally:
            unregister_benchmark("shadow_scn")

    def test_planner_records_registered_spec_into_units(self, clean_registry, gpus):
        with temporary_benchmark("unit_scn", FACTORY_SPEC, name="unit_scn",
                                 dimensions=3, seed=4) as spec:
            planner = ShardPlanner({"unit_scn": get_benchmark("unit_scn")},
                                   {"RTX_3090": gpus["RTX_3090"]},
                                   shard_size=SHARD_SIZE)
            unit = planner.plan().units[0]
            assert unit.spec == spec.to_dict()
        # Built-in kernels stay spec-free (workers rebuild them by name).
        builtin = ShardPlanner(gpus={"RTX_3090": gpus["RTX_3090"]},
                               shard_size=SHARD_SIZE)
        assert all(u.spec is None for u in builtin.plan().units)

    def test_huge_custom_scenarios_are_sampled_by_default(self, gpus):
        # A registered scenario with a paper-kernel-sized space (here ~6e7 points)
        # must not schedule exhaustive enumeration by accident: with no explicit
        # exhaustive_limit, customs above CUSTOM_EXHAUSTIVE_LIMIT are sampled.
        from repro.exec.planner import CUSTOM_EXHAUSTIVE_LIMIT

        huge = create_benchmark(name="huge_scn", dimensions=10,
                                radix_profile=[6] * 10, constraint_density=0.0,
                                failure_rate=0.0, seed=1)
        assert huge.space.cardinality > CUSTOM_EXHAUSTIVE_LIMIT
        planner = ShardPlanner({"huge_scn": huge},
                               {"RTX_3090": gpus["RTX_3090"]}, sample_size=500)
        assert planner.is_sampled("huge_scn")
        unit = planner.unit_for("huge_scn", "RTX_3090")
        assert unit.sample_size == 500 and unit.n_configs == 500
        # Paper kernels keep the paper design: pnpoly stays exhaustive.
        assert not ShardPlanner(gpus=planner.gpus).is_sampled("pnpoly")


# ------------------------------------------------------------ synthetic scenarios


class TestSyntheticScenarios:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_generation_is_deterministic(self, name, scenarios, gpu_3090):
        rebuilt = make_scenario(name)
        benchmark = scenarios[name]
        assert rebuilt.space.to_dict() == benchmark.space.to_dict()
        assert dict(rebuilt.workload.sizes) == dict(benchmark.workload.sizes)
        assert cache_bytes(rebuilt.build_cache(gpu_3090)) == \
            cache_bytes(benchmark.build_cache(gpu_3090))

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_constraints_stay_inside_the_vectorizable_subset(self, name, scenarios):
        space = scenarios[name].space
        assert space.constraints.all_vectorized
        assert space.count_constrained() > 0

    def test_failure_model_is_deterministic_and_rate_like(self, scenarios, gpu_3090):
        benchmark = scenarios["syn_sep_hard"]
        cache = benchmark.build_cache(gpu_3090)
        assert cache.num_invalid > 0 and cache.num_valid > 0
        failed = [o for o in cache if o.is_failure]
        assert all("synthetic scenario" in o.error for o in failed)
        # The observed failure fraction tracks the configured rate loosely.
        fraction = cache.num_invalid / len(cache)
        assert 0.02 < fraction < 0.5

    def test_zero_failure_rate_never_fails(self, scenarios, gpu_3090):
        cache = scenarios["syn_sep_plain"].build_cache(gpu_3090)
        assert cache.num_invalid == 0

    def test_optimum_moves_between_devices(self, scenarios, gpus):
        # Noise-free comparison, so differing landscapes can only come from the
        # per-device optimum shift of the value surface.
        benchmark = scenarios["syn_coupled"]
        values = {name: benchmark.build_cache(gpu, with_noise=False).values()
                  for name, gpu in gpus.items()}
        a, b = list(values.values())[:2]
        assert not np.allclose(a, b)

    def test_families_produce_different_surfaces(self, gpu_3090):
        kwargs = dict(dimensions=4, seed=13, constraint_density=0.0,
                      failure_rate=0.0, radix_profile=[4, 4, 4, 4])
        sep = create_benchmark(name="fam", family="separable", **kwargs)
        coupled = create_benchmark(name="fam", family="coupled", **kwargs)
        assert sep.space.to_dict() == coupled.space.to_dict()
        values_sep = sep.build_cache(gpu_3090, with_noise=False).values()
        values_coupled = coupled.build_cache(gpu_3090, with_noise=False).values()
        assert not np.allclose(values_sep, values_coupled)

    def test_invalid_arguments_are_refused(self):
        with pytest.raises(ReproError, match="family"):
            create_benchmark(family="spiral")
        with pytest.raises(ReproError, match="dimensions"):
            create_benchmark(dimensions=0)
        with pytest.raises(ReproError, match="radix_profile"):
            create_benchmark(dimensions=3, radix_profile=[4, 4])
        with pytest.raises(ReproError, match="radix"):
            create_benchmark(dimensions=2, radix_profile=[4, 1])

    def test_scenario_specs_sweep(self):
        specs = scenario_specs(6, base_seed=100)
        assert len(specs) == 6
        families = {spec["kwargs"]["family"] for spec in specs.values()}
        assert families == set(synthetic.FAMILIES)
        suite = synthetic_suite(3, base_seed=100, dimensions=3)
        assert all(suite[name].space.dimensions == 3 for name in suite)
        assert set(suite) == set(scenario_specs(3, base_seed=100))


# --------------------------------------------------- differential executor harness


class TestDifferentialExecution:
    """Serial vs parallel vs resume, byte for byte, per scenario family."""

    def _planner(self, name, benchmark, gpus):
        return ShardPlanner({name: benchmark}, {"RTX_3090": gpus["RTX_3090"]},
                            shard_size=SHARD_SIZE)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_serial_executor_matches_build_cache(self, name, scenarios, gpus):
        planner = self._planner(name, scenarios[name], gpus)
        unit = planner.unit_for(name, "RTX_3090")
        caches = SerialExecutor().run(planner.plan(),
                                      benchmarks=planner.benchmarks,
                                      gpus=planner.gpus)
        reference = scenarios[name].build_cache(
            gpus["RTX_3090"], sample_size=unit.sample_size, seed=unit.seed)
        assert cache_bytes(caches[(name, "RTX_3090")]) == cache_bytes(reference)

    @pytest.mark.parametrize("name", ["syn_sep_hard", "syn_coupled"])
    def test_parallel_executor_is_byte_identical(self, name, scenarios, gpus,
                                                 clean_registry):
        with temporary_benchmark(name, FACTORY_SPEC, name=name, **SCENARIOS[name]):
            planner = self._planner(name, get_benchmark(name), gpus)
            serial = SerialExecutor().run(planner.plan(),
                                          benchmarks=planner.benchmarks,
                                          gpus=planner.gpus)
            parallel = ParallelExecutor(workers=2).run(
                planner.plan(), benchmarks=planner.benchmarks, gpus=planner.gpus)
            key = (name, "RTX_3090")
            assert cache_bytes(parallel[key]) == cache_bytes(serial[key])

    def test_parallel_executor_uses_plan_specs_without_registration(self, scenarios,
                                                                    gpus):
        # The spec can come from the plan alone: nothing registered, specs passed
        # explicitly to the planner (exactly what --benchmark-spec does).
        name = "syn_coupled_radix"
        planner = ShardPlanner(
            {name: scenarios[name]}, {"RTX_3090": gpus["RTX_3090"]},
            shard_size=SHARD_SIZE,
            specs={name: {"factory": FACTORY_SPEC,
                          "kwargs": {"name": name, **SCENARIOS[name]}}})
        serial = SerialExecutor().run(planner.plan(), benchmarks=planner.benchmarks,
                                      gpus=planner.gpus)
        parallel = ParallelExecutor(workers=2).run(
            planner.plan(), benchmarks=planner.benchmarks, gpus=planner.gpus)
        key = (name, "RTX_3090")
        assert cache_bytes(parallel[key]) == cache_bytes(serial[key])

    def test_parallel_executor_refuses_anonymous_benchmarks(self, scenarios, gpus):
        benchmark = scenarios["syn_sep_plain"]
        planner = self._planner("anonymous_scn", benchmark, gpus)
        with pytest.raises(ReproError, match="register"):
            ParallelExecutor(workers=2).run(planner.plan(),
                                            benchmarks=planner.benchmarks,
                                            gpus=planner.gpus)

    def test_parallel_executor_refuses_diverged_object_under_spec(self, gpus,
                                                                  clean_registry):
        # A registered spec that builds something else than the object in the plan
        # must be refused, not silently replaced in workers.
        name = "diverged_scn"
        other = create_benchmark(name=name, family="separable", dimensions=3, seed=99)
        with temporary_benchmark(name, FACTORY_SPEC, name=name, family="separable",
                                 dimensions=3, seed=1):
            planner = self._planner(name, other, gpus)
            with pytest.raises(ReproError, match="differs"):
                ParallelExecutor(workers=2).run(planner.plan(),
                                                benchmarks=planner.benchmarks,
                                                gpus=planner.gpus)

    def test_plan_spec_beats_a_diverged_registration(self, gpus, clean_registry):
        # A plan's unit spec is authoritative for executors resolving their own
        # benchmarks: a same-named registration that diverged after planning must
        # not silently change what the campaign evaluates (workers already build
        # from the unit spec, so the parent has to as well).
        name = "precedence_scn"
        kwargs = dict(family="separable", dimensions=3, seed=4, failure_rate=0.0)
        with temporary_benchmark(name, FACTORY_SPEC, name=name, **kwargs):
            planner = self._planner(name, get_benchmark(name), gpus)
            plan = planner.plan()
            reference = SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                                             gpus=planner.gpus)
        # Re-register the name with a 100x slower model (same space, so no
        # fingerprint divergence) and resolve benchmarks from the plan alone.
        with temporary_benchmark(name, FACTORY_SPEC, name=name,
                                 base_time_ms=100.0, **kwargs):
            resolved = SerialExecutor().run(plan)
        key = (name, "RTX_3090")
        assert cache_bytes(resolved[key]) == cache_bytes(reference[key])

    def test_checkpoint_resume_rebuilds_from_manifest_spec(self, gpus, tmp_path,
                                                           clean_registry):
        # Acceptance criterion: a runtime-registered scenario survives a
        # checkpoint/resume round-trip with *nothing registered* on resume -- the
        # manifest's spec fields alone rebuild the benchmark.
        name = "resume_scn"
        spec_kwargs = dict(family="coupled", dimensions=4, seed=21,
                           constraint_density=0.5, failure_rate=0.1)
        register_benchmark(name, FACTORY_SPEC, name=name, **spec_kwargs)
        try:
            planner = self._planner(name, get_benchmark(name), gpus)
            plan = planner.plan()
            store = CheckpointStore(tmp_path / "ckpt")
            ParallelExecutor(workers=2).run(plan, benchmarks=planner.benchmarks,
                                            gpus=planner.gpus, checkpoint=store)
            reference = SerialExecutor().run(plan, benchmarks=planner.benchmarks,
                                             gpus=planner.gpus)
            dropped = [s for s in plan.shards if s.shard_id % 2 == 0]
            assert dropped
            for shard in dropped:
                os.unlink(store.fragment_path(shard))
        finally:
            unregister_benchmark(name)

        status = store.status()
        assert any(row["benchmark"] == name for row in status["units"])
        resumed = resume_campaign(store, executor=ParallelExecutor(workers=2))
        key = (name, "RTX_3090")
        assert cache_bytes(resumed[key]) == cache_bytes(reference[key])


# --------------------------------------------------------- dict vs index evaluation


class TestDictVsIndexPaths:
    """The two evaluation currencies agree on every synthetic scenario family."""

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_model_problem_paths_agree(self, name, scenarios, gpu_3090):
        benchmark = scenarios[name]
        space = benchmark.space
        rng = np.random.default_rng(17)
        indices = rng.integers(0, space.cardinality, size=40)
        dict_problem = benchmark.problem(gpu_3090)
        index_problem = benchmark.problem(gpu_3090)
        for index in indices.tolist():
            a = dict_problem.evaluate(space.config_at(index))
            b = index_problem.evaluate_index(index)
            # Same values, same validity, same error strings (constraint
            # violations, synthetic resource limits), same evaluation order.
            assert a.to_dict() == b.to_dict(), (name, index)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_replay_problem_paths_agree_including_misses(self, name, scenarios,
                                                         gpu_3090):
        benchmark = scenarios[name]
        cache = benchmark.build_cache(gpu_3090)
        space = cache.space
        stored = space.indices_of_configs([dict(o.config) for o in cache])[:20]
        rng = np.random.default_rng(23)
        probes = np.concatenate([stored,
                                 rng.integers(0, space.cardinality, size=20)])
        for strict in (True, False):
            dict_problem = cache.to_problem(strict=strict)
            index_problem = cache.to_problem(strict=strict)
            for index in probes.tolist():
                a = dict_problem.evaluate(space.config_at(index))
                b = index_problem.evaluate_index(index)
                assert a.to_dict() == b.to_dict(), (name, strict, index)

    @pytest.mark.parametrize("name", ["syn_sep_hard", "syn_coupled"])
    def test_tuner_trajectories_replay_identically_on_both_paths(self, name,
                                                                 scenarios,
                                                                 gpu_3090):
        # The goldens discipline of test_index_native, applied to generated
        # scenarios: a migrated (index-native) tuner run on a replay problem is
        # observation-identical to the same run against the dictionary objective
        # only -- same indices, values, error strings, evaluation order.
        from repro.tuners import GreedyILS, LocalSearch, RandomSearch

        benchmark = scenarios[name]
        replay = benchmark.build_cache(gpu_3090)
        space = replay.space
        for factory in (RandomSearch, LocalSearch, GreedyILS):
            index_result = run_tuning(factory(), replay.to_problem(strict=False),
                                      max_evaluations=40, seed=5)
            dict_cache = EvaluationCache.from_dict(replay.to_dict(), space=space)
            dict_problem = dict_cache.to_problem(strict=False)
            dict_problem._evaluate_index_fn = None  # force the dictionary path
            dict_problem._peek_index_fn = None
            dict_result = run_tuning(factory(), dict_problem,
                                     max_evaluations=40, seed=5)
            got = [[space.index_of(o.config), o.value, o.valid, o.error,
                    o.evaluation_index] for o in index_result.observations]
            expected = [[space.index_of(o.config), o.value, o.valid, o.error,
                         o.evaluation_index] for o in dict_result.observations]
            assert got == expected, (name, factory.__name__)


# -------------------------------------------------------------- registry in tools


class TestRunMatrixRegistry:
    def test_problem_specs_resolve_through_the_registry(self, gpu_3090,
                                                        clean_registry):
        from repro.tuners.random_search import RandomSearch

        name = "matrix_scn"
        with temporary_benchmark(name, FACTORY_SPEC, name=name, dimensions=3,
                                 seed=6, failure_rate=0.0):
            tuners = {"random": lambda seed=None: RandomSearch(seed=seed)}
            by_spec = run_matrix(tuners, {"scn": f"{name}@rtx-3090"},
                                 max_evaluations=25, seed=2)
            explicit = run_matrix(
                tuners, {"scn": get_benchmark(name).problem(gpu_3090)},
                max_evaluations=25, seed=2)
        key = ("random", "scn")
        assert [o.to_dict() for o in by_spec[key]] == \
            [o.to_dict() for o in explicit[key]]

    def test_malformed_problem_specs_fail_loudly(self):
        from repro.tuners.random_search import RandomSearch

        with pytest.raises(ReproError, match="benchmark@gpu"):
            run_matrix({"random": lambda seed=None: RandomSearch(seed=seed)},
                       {"bad": "gemm"}, max_evaluations=5)


class TestExecCLISpecs:
    def run_cli(self, *argv) -> tuple[int, str]:
        out = io.StringIO()
        code = exec_main(list(argv), out=out)
        return code, out.getvalue()

    def _spec_argument(self, name: str) -> str:
        kwargs = {"name": name, "family": "separable", "dimensions": 3, "seed": 8,
                  "failure_rate": 0.0}
        return name + "=" + json.dumps({"factory": FACTORY_SPEC, "kwargs": kwargs})

    def test_plan_lists_spec_benchmarks(self):
        code, text = self.run_cli(
            "plan", "--benchmark-spec", self._spec_argument("cli_scn"),
            "--benchmarks", "cli_scn", "--gpus", "RTX_3090")
        assert code == 0, text
        assert "cli_scn" in text and "exhaustive" in text

    def test_bare_factory_spec_form(self):
        # Usable when the factory's default name matches the spec name...
        code, text = self.run_cli(
            "plan", "--benchmark-spec", f"synthetic={FACTORY_SPEC}",
            "--benchmarks", "synthetic", "--gpus", "RTX_3090")
        assert code == 0, text
        assert "synthetic" in text
        # ...and refused when it would mislabel the campaign's caches.
        code, text = self.run_cli(
            "plan", "--benchmark-spec", f"bare_scn={FACTORY_SPEC}",
            "--benchmarks", "bare_scn", "--gpus", "RTX_3090")
        assert code == 2
        assert "one identity" in text

    def test_malformed_spec_arguments_error_cleanly(self):
        for bad in ("no_equals", "name={not json}", 'name={"kwargs": {}}'):
            code, text = self.run_cli("plan", "--benchmark-spec", bad)
            assert code == 2
            assert "error:" in text

    def test_selection_tokens_normalize_like_spec_names(self):
        # --benchmark-spec normalizes its NAME; --benchmarks must agree with it
        # (and with get_benchmark's case/'-'/space tolerance).
        code, text = self.run_cli(
            "plan", "--benchmark-spec", self._spec_argument("norm_scn"),
            "--benchmarks", "Norm-Scn,GEMM", "--gpus", "RTX_3090")
        assert code == 0, text
        assert "norm_scn" in text and "gemm" in text

    def test_empty_selection_plans_nothing(self):
        # An explicitly empty --benchmarks list is an empty plan, not "all".
        code, text = self.run_cli("plan", "--benchmarks", "", "--gpus", "RTX_3090")
        assert code == 0, text
        assert "total: 0 configurations" in text

    def test_spec_cannot_shadow_builtin_kernels(self):
        # The CLI enforces the same guard as register_benchmark: synthetic data
        # must never land in a cache file carrying a paper kernel's name.
        code, text = self.run_cli(
            "plan", "--benchmark-spec", f"gemm={FACTORY_SPEC}",
            "--benchmarks", "gemm")
        assert code == 2
        assert "shadow" in text

    def test_run_status_resume_round_trip_with_spec(self, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        outdir = str(tmp_path / "caches")
        spec = self._spec_argument("cli_scn")
        code, text = self.run_cli(
            "run", "--benchmark-spec", spec, "--benchmarks", "cli_scn",
            "--gpus", "RTX_3090", "--shard-size", "20", "--workers", "1",
            "--checkpoint-dir", ckpt, "--output-dir", outdir, "--quiet")
        assert code == 0, text
        assert "cli_scn/RTX_3090:" in text
        first = (tmp_path / "caches" / "cli_scn_RTX_3090.json").read_bytes()

        # The scenario appears in status output, resolved from the manifest.
        code, text = self.run_cli("status", "--checkpoint-dir", ckpt)
        assert code == 0
        assert "cli_scn" in text

        # Resume needs no --benchmark-spec: the manifest's spec fields suffice.
        os.unlink(tmp_path / "ckpt" / "shard_00001.json")
        code, text = self.run_cli("resume", "--checkpoint-dir", ckpt,
                                  "--output-dir", outdir, "--quiet")
        assert code == 0, text
        assert (tmp_path / "caches" / "cli_scn_RTX_3090.json").read_bytes() == first


# ------------------------------------------------------------------- codec fuzzing


def _random_space(rng: random.Random) -> SearchSpace:
    """A random small space: mixed value types, varying radices and constraints."""
    dims = rng.randint(1, 5)
    parameters = []
    numeric_names = []
    for j in range(dims):
        radix = rng.randint(2, 7)
        kind = rng.random()
        if kind < 0.55:  # integer ladder
            start = rng.randrange(1, 16)
            step = rng.randrange(1, 7)
            values = tuple(start + step * i for i in range(radix))
            numeric_names.append(f"q{j}")
        elif kind < 0.8:  # float ladder
            start = rng.randrange(1, 8) / 2.0
            step = rng.randrange(1, 5) / 4.0
            values = tuple(start + step * i for i in range(radix))
            numeric_names.append(f"q{j}")
        else:  # categorical strings
            values = tuple(f"v{j}_{i}" for i in range(radix))
        parameters.append(Parameter(f"q{j}", values))
    expressions = []
    if len(numeric_names) >= 2 and rng.random() < 0.6:
        for _ in range(rng.randint(1, 2)):
            a, b = rng.sample(numeric_names, 2)
            expressions.append(f"{a} + {b} >= 0")  # always true; exercises the mask
    return SearchSpace(parameters, expressions)


class TestCodecFuzz:
    """Seeded property-style tests over ~200 generated spaces (random stdlib only)."""

    def test_mixed_radix_codec_round_trips(self):
        rng = random.Random(20260728)
        for round_number in range(200):
            space = _random_space(rng)
            np_rng = np.random.default_rng(rng.randrange(2**32))
            indices = np_rng.integers(0, space.cardinality,
                                      size=rng.randint(1, 64))
            digits = space.indices_to_digits(indices)
            assert digits.shape == (indices.size, space.dimensions)
            assert np.array_equal(space.digits_to_indices(digits), indices), \
                round_number
            configs = space.configs_at(indices)
            assert np.array_equal(space.indices_of_configs(configs), indices), \
                round_number
            # Scalar and batch decoders agree.
            probe = int(indices[0])
            assert configs[0] == space.config_at(probe), round_number

    def test_feature_codec_round_trips(self):
        rng = random.Random(977)
        for round_number in range(200):
            space = _random_space(rng)
            np_rng = np.random.default_rng(rng.randrange(2**32))
            indices = np_rng.integers(0, space.cardinality,
                                      size=rng.randint(1, 32))
            encoded = space.encode_indices(indices)
            assert encoded.shape == (indices.size, space.dimensions)
            # Element-wise identical to encoding the materialised configurations.
            assert np.array_equal(encoded,
                                  space.encode_batch(space.configs_at(indices))), \
                round_number
            for row, index in zip(encoded, indices.tolist()):
                assert space.decode_index(row) == index, round_number
                assert np.array_equal(
                    space.decode_digits(row),
                    space.indices_to_digits([index])[0]), round_number

    def test_hashed_index_table_matches_dense_and_dict_store(self, monkeypatch):
        rng = random.Random(4242)
        for round_number in range(60):
            space = _random_space(rng)
            np_rng = np.random.default_rng(rng.randrange(2**32))
            n_entries = rng.randint(1, min(48, space.cardinality))
            stored = np_rng.choice(space.cardinality, size=n_entries, replace=False)
            rows = [(int(i), float(k + 1) if k % 4 else math.inf, k % 4 == 0)
                    for k, i in enumerate(stored.tolist())]

            def build_cache() -> EvaluationCache:
                cache = EvaluationCache("fuzz", "GPU", space)
                for index, value, failed in rows:
                    cache.add(space.config_at(index), value, valid=not failed,
                              error="boom" if failed else "")
                return cache

            dense_table = build_cache().index_table()
            with monkeypatch.context() as patch:
                patch.setattr(cache_module, "_DENSE_LOOKUP_MAX", -1)
                hashed_cache = build_cache()
                hashed_table = hashed_cache.index_table()
            assert dense_table._dense and not hashed_table._dense

            probes = np.concatenate([
                stored,
                np_rng.integers(0, space.cardinality, size=16),
                np.asarray([-1, -7, space.cardinality, space.cardinality + 3]),
                stored[:3],  # duplicates inside one batch
            ])
            dense = dense_table.lookup(probes)
            hashed = hashed_table.lookup(probes)
            for a, b in zip(dense, hashed):
                assert np.array_equal(a, b), round_number
            # Batch and scalar paths agree probe for probe, and both agree with
            # the dict store.
            for k, index in enumerate(probes.tolist()):
                assert hashed_table.lookup_one(index) == \
                    (dense[0][k], dense[1][k], dense[2][k]), round_number
                obs = hashed_cache.get(space.config_at(index)) \
                    if 0 <= index < space.cardinality else None
                assert dense[2][k] == (obs is not None), round_number

    def test_hashed_table_mutations_invalidate_the_sorted_index(self, monkeypatch):
        space = _random_space(random.Random(7))
        with monkeypatch.context() as patch:
            patch.setattr(cache_module, "_DENSE_LOOKUP_MAX", -1)
            cache = EvaluationCache("fuzz", "GPU", space)
            cache.add(space.config_at(0), 1.0)
            table = cache.index_table()
        assert not table._dense
        values, failure, found = table.lookup(np.asarray([0, 1]))
        assert found.tolist() == [True, False]
        # A fresh key after the sorted index was built must invalidate it...
        cache.add(space.config_at(1), 2.0)
        values, failure, found = cache.index_table().lookup(np.asarray([0, 1]))
        assert found.tolist() == [True, True] and values.tolist() == [1.0, 2.0]
        # ...while a pure overwrite updates in place (rows are stable).
        cache.add(space.config_at(1), 3.0)
        values, _, _ = cache.index_table().lookup(np.asarray([1]))
        assert values.tolist() == [3.0]
        assert cache.index_table() is table

    def test_hashed_lookup_on_a_real_sampled_space(self, benchmarks, gpu_3090):
        # The organic hashed case: hotspot's cardinality exceeds the dense ceiling.
        cache = benchmarks["hotspot"].build_cache(gpu_3090, sample_size=64, seed=3)
        table = cache.index_table()
        assert not table._dense
        space = cache.space
        stored = space.indices_of_configs([dict(o.config) for o in cache])
        probes = np.concatenate([stored, stored + 1, np.asarray([-5])])
        values, failure, found = table.lookup(probes)
        assert found[:stored.size].all()
        for k, obs in enumerate(cache):
            assert failure[k] == obs.is_failure
            if not obs.is_failure:
                assert values[k] == obs.value
