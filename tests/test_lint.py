"""The contract checker: rule fixtures, suppressions, baseline, determinism.

Layout mirrors the linter's own guarantees:

* every rule has good/bad source fixtures (the bad snippet must be caught, the
  sanctioned form must pass);
* inline suppressions silence findings only with a reason, and stale allows are
  themselves findings;
* the baseline round-trips byte-identically and absorbs exactly the grandfathered
  fingerprints;
* discovery and reporting are deterministic (sorted paths, stable order,
  byte-identical JSON);
* the meta-test: the repo's own ``src/repro`` is clean against the committed
  baseline -- the acceptance criterion CI enforces.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    Baseline,
    lint_paths,
    render_json,
    render_text,
    scan_suppressions,
)
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
COMMITTED_BASELINE = REPO_ROOT / "lint_baseline.json"


def write_module(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def run_lint(root: Path, rel: str, source: str, **kwargs):
    write_module(root, rel, source)
    return lint_paths([root], root, **kwargs)


def codes(result) -> list[str]:
    return [finding.code for finding in result.findings]


# ---------------------------------------------------------------------- rule fixtures
#
# One (bad, good, rel_path) pair per rule; the bad snippet must trigger exactly its
# rule and the good snippet must be clean.  Kept importable for the injection
# meta-test at the bottom.

RULE_FIXTURES = {
    "RPL001": {
        "rel": "repro/tuners/example.py",
        "bad": """
            import random
            import numpy as np

            def draw():
                random.seed(0)
                return random.random() + np.random.rand()
            """,
        "good": """
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.random()
            """,
    },
    "RPL002": {
        "rel": "repro/analysis/example.py",
        "bad": """
            import time

            def stamp(rows):
                return {"rows": rows, "at": time.time()}
            """,
        "good": """
            def stamp(rows, tick):
                return {"rows": rows, "at": tick}
            """,
    },
    "RPL003": {
        "rel": "repro/io/example.py",
        "bad": """
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
        "good": """
            from repro.io.cachefile import atomic_write_json

            def dump(path, payload):
                atomic_write_json(payload, path)

            def read(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """,
    },
    "RPL004": {
        "rel": "repro/exec/example.py",
        "bad": """
            def attempt(task):
                try:
                    task()
                except Exception:
                    pass
                raise Exception("worker failed")
            """,
        "good": """
            from repro.core.errors import TransientExecutionError

            def attempt(task):
                try:
                    task()
                except Exception as exc:
                    raise TransientExecutionError(f"task failed: {exc}") from exc
            """,
    },
    "RPL005": {
        "rel": "repro/tuners/budget_example.py",
        "bad": """
            from repro.core.budget import Budget

            class CappedBudget(Budget):
                @property
                def exhausted(self):
                    return self.evaluations_used >= 5
            """,
        "good": """
            from repro.core.budget import Budget

            class CappedBudget(Budget):
                @property
                def exhausted(self):
                    return self.evaluations_used >= 5

                def affordable_evaluations(self):
                    return max(0, 5 - self.evaluations_used)
            """,
    },
    "RPL006": {
        "rel": "repro/kernels/reg_example.py",
        "bad": """
            from repro.core.registry import register_benchmark

            def install():
                register_benchmark("bad", "mod:factory", grid=lambda: 3)
            """,
        "good": """
            from repro.core.registry import register_benchmark

            def install(seed):
                register_benchmark("good", "mod:factory", seed=seed,
                                   sizes=[16, 32], overwrite=True)
            """,
    },
}


class TestRuleFixtures:
    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_bad_snippet_is_caught(self, tmp_path, code):
        fixture = RULE_FIXTURES[code]
        result = run_lint(tmp_path, fixture["rel"], fixture["bad"])
        assert code in codes(result), render_text(result)
        assert result.exit_code == 1

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_good_snippet_is_clean(self, tmp_path, code):
        fixture = RULE_FIXTURES[code]
        result = run_lint(tmp_path, fixture["rel"], fixture["good"])
        assert result.findings == [], render_text(result)
        assert result.exit_code == 0

    def test_rpl001_flags_entropy_sources(self, tmp_path):
        result = run_lint(tmp_path, "repro/io/entropy.py", """
            import os
            import uuid

            def names():
                return uuid.uuid4().hex, os.urandom(8)
            """)
        assert codes(result) == ["RPL001", "RPL001"]

    def test_rpl001_accepts_seeded_random_instances(self, tmp_path):
        # random.Random(seed) calls are sanctioned; only the module import line
        # itself demands an annotation.
        result = run_lint(tmp_path, "repro/kernels/seeded.py", """
            # repro: allow[RPL001] only seeded Random instances below
            import random

            def rng(seed):
                return random.Random(seed)
            """)
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_rpl002_allowlists_progress_module(self, tmp_path):
        source = """
            import time

            def tick():
                return time.monotonic()
            """
        allowed = run_lint(tmp_path, "repro/exec/progress.py", source)
        assert allowed.findings == []
        tmp2 = tmp_path / "other"
        flagged = run_lint(tmp2, "repro/exec/other.py", source)
        assert codes(flagged) == ["RPL002"]

    def test_rpl003_scope_is_io_and_exec_only(self, tmp_path):
        source = RULE_FIXTURES["RPL003"]["bad"]
        outside = run_lint(tmp_path, "repro/analysis/writer.py", source)
        assert outside.findings == []

    def test_rpl003_flags_oswrite_and_write_text(self, tmp_path):
        result = run_lint(tmp_path, "repro/exec/writer.py", """
            import os
            from pathlib import Path

            def clobber(path, data):
                Path(path).write_text(data)
                fd = os.open(path, os.O_CREAT | os.O_WRONLY)
                os.close(fd)
            """)
        assert codes(result) == ["RPL003", "RPL003"]

    def test_rpl004_flags_bare_except(self, tmp_path):
        result = run_lint(tmp_path, "repro/exec/swallow.py", """
            def attempt(task):
                try:
                    task()
                except:
                    return None
            """)
        assert codes(result) == ["RPL004"]

    def test_rpl006_flags_unserializable_spec_kwargs(self, tmp_path):
        result = run_lint(tmp_path, "repro/kernels/reg2.py", """
            from repro.core.registry import BenchmarkSpec

            def specs():
                return BenchmarkSpec("mod:factory", {"sizes": {1, 2, 3}})
            """)
        assert codes(result) == ["RPL006"]


class TestSuppressions:
    def test_trailing_allow_with_reason_suppresses(self, tmp_path):
        result = run_lint(tmp_path, "repro/io/w.py", """
            def dump(path, text):
                with open(path, "w") as handle:  # repro: allow[RPL003] test fixture
                    handle.write(text)
            """)
        assert result.findings == []
        assert [f.code for f in result.suppressed] == ["RPL003"]

    def test_standalone_allow_covers_next_code_line(self, tmp_path):
        result = run_lint(tmp_path, "repro/io/w.py", """
            def dump(path, text):
                # repro: allow[RPL003] the reason wraps across two
                # comment lines before the statement
                with open(path, "w") as handle:
                    handle.write(text)
            """)
        assert result.findings == []

    def test_allow_without_reason_is_a_finding(self, tmp_path):
        result = run_lint(tmp_path, "repro/io/w.py", """
            def dump(path, text):
                with open(path, "w") as handle:  # repro: allow[RPL003]
                    handle.write(text)
            """)
        assert codes(result) == ["RPL000"]
        assert "without a reason" in result.findings[0].message

    def test_unused_allow_is_a_finding(self, tmp_path):
        result = run_lint(tmp_path, "repro/io/w.py", """
            def read(path):  # repro: allow[RPL003] nothing to suppress here
                with open(path, "rb") as handle:
                    return handle.read()
            """)
        assert codes(result) == ["RPL000"]
        assert "unused suppression" in result.findings[0].message

    def test_multi_code_allow(self, tmp_path):
        result = run_lint(tmp_path, "repro/io/w.py", """
            import uuid
            from pathlib import Path

            def scratch(path):
                # repro: allow[RPL001,RPL003] fixture exercising one comment, two codes
                Path(path).write_text(uuid.uuid4().hex)
            """)
        assert result.findings == []
        assert sorted(f.code for f in result.suppressed) == ["RPL001", "RPL003"]

    def test_scanner_ignores_hash_inside_strings(self, tmp_path):
        source = 'text = "# repro: allow[RPL003] not a comment"\n'
        write_module(tmp_path, "repro/io/s.py", source)
        suppressions = scan_suppressions(source)
        assert suppressions == []


class TestBaseline:
    def bad_tree(self, root: Path) -> None:
        write_module(root, "repro/io/legacy.py", """
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """)

    def test_round_trip_absorbs_grandfathered_findings(self, tmp_path):
        self.bad_tree(tmp_path)
        first = lint_paths([tmp_path], tmp_path)
        assert codes(first) == ["RPL003"]

        snapshot = Baseline.from_findings(first.findings)
        baseline_path = tmp_path / "lint_baseline.json"
        snapshot.save(baseline_path)

        second = lint_paths([tmp_path], tmp_path,
                            baseline=Baseline.load(baseline_path))
        assert second.findings == []
        assert codes(second) == []
        assert [f.code for f in second.baselined] == ["RPL003"]
        assert second.exit_code == 0

    def test_new_findings_are_not_absorbed(self, tmp_path):
        self.bad_tree(tmp_path)
        first = lint_paths([tmp_path], tmp_path)
        baseline_path = tmp_path / "lint_baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)

        write_module(tmp_path, "repro/io/fresh.py", """
            def dump(path, text):
                with open(path, "a") as handle:
                    handle.write(text)
            """)
        result = lint_paths([tmp_path], tmp_path,
                            baseline=Baseline.load(baseline_path))
        assert [f.path for f in result.findings] == ["repro/io/fresh.py"]
        assert result.exit_code == 1

    def test_fingerprints_survive_line_drift(self, tmp_path):
        path = tmp_path / "repro/io/legacy.py"
        self.bad_tree(tmp_path)
        first = lint_paths([tmp_path], tmp_path)
        baseline_path = tmp_path / "lint_baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)

        # Prepend unrelated lines: the finding moves but its fingerprint holds.
        path.write_text("HEADER = 1\nFOOTER = 2\n" + path.read_text())
        drifted = lint_paths([tmp_path], tmp_path,
                             baseline=Baseline.load(baseline_path))
        assert drifted.findings == []
        assert len(drifted.baselined) == 1
        assert drifted.baselined[0].line == first.findings[0].line + 2

    def test_stale_entries_are_reported(self, tmp_path):
        self.bad_tree(tmp_path)
        first = lint_paths([tmp_path], tmp_path)
        baseline_path = tmp_path / "lint_baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)

        write_module(tmp_path, "repro/io/legacy.py", """
            def dump(path, text):
                return (path, text)
            """)
        result = lint_paths([tmp_path], tmp_path,
                            baseline=Baseline.load(baseline_path))
        assert result.findings == []
        assert len(result.stale_baseline) == 1
        assert "stale baseline entry" in render_text(result)

    def test_save_is_byte_deterministic(self, tmp_path):
        self.bad_tree(tmp_path)
        findings = lint_paths([tmp_path], tmp_path).findings
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        Baseline.from_findings(findings).save(a)
        # Loading and re-saving (any entry assembly order) emits the same bytes.
        Baseline.load(a).save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_write_baseline_preserves_reasons(self, tmp_path):
        self.bad_tree(tmp_path)
        baseline_path = tmp_path / "lint_baseline.json"
        assert main(["--root", str(tmp_path), str(tmp_path / "repro"),
                     "--baseline", str(baseline_path), "--write-baseline"]) == 0
        payload = json.loads(baseline_path.read_text())
        payload["findings"][0]["reason"] = "legacy writer, replaced in PR 11"
        Baseline(
            {e["fingerprint"]: e for e in payload["findings"]}).save(baseline_path)

        assert main(["--root", str(tmp_path), str(tmp_path / "repro"),
                     "--baseline", str(baseline_path), "--write-baseline"]) == 0
        refreshed = json.loads(baseline_path.read_text())
        assert refreshed["findings"][0]["reason"] == "legacy writer, replaced in PR 11"


class TestDeterminism:
    def populate(self, root: Path) -> None:
        write_module(root, "repro/io/b.py", """
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """)
        write_module(root, "repro/io/a.py", """
            import uuid

            def name():
                return uuid.uuid4().hex
            """)
        write_module(root, "repro/exec/c.py", """
            def boom():
                raise Exception("nope")
            """)

    def test_json_report_is_byte_identical_across_runs(self, tmp_path):
        self.populate(tmp_path)
        first = render_json(lint_paths([tmp_path], tmp_path))
        second = render_json(lint_paths([tmp_path], tmp_path))
        assert first == second

    def test_order_is_independent_of_argument_order(self, tmp_path):
        self.populate(tmp_path)
        files = [tmp_path / "repro/io/b.py", tmp_path / "repro/io/a.py",
                 tmp_path / "repro/exec/c.py"]
        forward = lint_paths(list(files), tmp_path)
        backward = lint_paths(list(reversed(files)), tmp_path)
        assert forward.findings == backward.findings
        assert render_json(forward) == render_json(backward)
        # Findings come out path-sorted regardless of discovery order.
        assert [f.path for f in forward.findings] == sorted(
            f.path for f in forward.findings)

    def test_report_paths_are_relative_posix(self, tmp_path):
        self.populate(tmp_path)
        result = lint_paths([tmp_path], tmp_path)
        for finding in result.findings:
            assert not Path(finding.path).is_absolute()
            assert "\\" not in finding.path


class TestCLI:
    def test_exit_codes(self, tmp_path, capsys):
        write_module(tmp_path, "repro/io/ok.py", "VALUE = 1\n")
        assert main(["--root", str(tmp_path), str(tmp_path / "repro")]) == 0
        write_module(tmp_path, "repro/io/bad.py", """
            def dump(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """)
        assert main(["--root", str(tmp_path), str(tmp_path / "repro")]) == 1
        assert main(["--root", str(tmp_path),
                     str(tmp_path / "does-not-exist")]) == 2
        capsys.readouterr()

    def test_select_runs_only_named_rules(self, tmp_path, capsys):
        write_module(tmp_path, "repro/io/bad.py", """
            import uuid

            def dump(path):
                with open(path, "w") as handle:
                    handle.write(uuid.uuid4().hex)
            """)
        assert main(["--root", str(tmp_path), str(tmp_path / "repro"),
                     "--select", "RPL001"]) == 1
        out = capsys.readouterr().out
        assert "RPL001" in out and "RPL003" not in out

    def test_json_format_and_list_rules(self, tmp_path, capsys):
        write_module(tmp_path, "repro/io/ok.py", "VALUE = 1\n")
        assert main(["--root", str(tmp_path), str(tmp_path / "repro"),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_checked"] == 1
        assert main(["--list-rules"]) == 0
        listing = capsys.readouterr().out
        for rule in RULES:
            assert rule.code in listing

    def test_missing_explicit_baseline_is_usage_error(self, tmp_path, capsys):
        write_module(tmp_path, "repro/io/ok.py", "VALUE = 1\n")
        assert main(["--root", str(tmp_path), str(tmp_path / "repro"),
                     "--baseline", str(tmp_path / "absent.json")]) == 2
        capsys.readouterr()


class TestRepoIsClean:
    """The acceptance criterion: the repo's own tree passes its own linter."""

    def test_committed_baseline_exists(self):
        assert COMMITTED_BASELINE.is_file()
        payload = json.loads(COMMITTED_BASELINE.read_text())
        for entry in payload["findings"]:
            assert entry["reason"].strip(), entry
            assert not entry["reason"].startswith("TODO"), entry

    def test_src_repro_is_clean_against_committed_baseline(self, capsys):
        exit_code = main(["--root", str(REPO_ROOT), str(REPO_ROOT / "src/repro"),
                          "--baseline", str(COMMITTED_BASELINE)])
        output = capsys.readouterr().out
        assert exit_code == 0, output

    def test_repo_json_report_is_byte_identical(self):
        baseline = Baseline.load(COMMITTED_BASELINE)
        first = render_json(lint_paths([REPO_ROOT / "src/repro"], REPO_ROOT,
                                       baseline=baseline))
        baseline2 = Baseline.load(COMMITTED_BASELINE)
        second = render_json(lint_paths([REPO_ROOT / "src/repro"], REPO_ROOT,
                                        baseline=baseline2))
        assert first == second

    @pytest.mark.parametrize("code", sorted(RULE_FIXTURES))
    def test_injected_bad_snippet_fails_the_build(self, tmp_path, code):
        """Dropping any rule's bad snippet into a repro tree exits nonzero."""
        fixture = RULE_FIXTURES[code]
        write_module(tmp_path, fixture["rel"], fixture["bad"])
        assert main(["--root", str(tmp_path), str(tmp_path / "repro"),
                     "--no-baseline"]) == 1
