"""Tier-2 perf smoke checks (pytest marker ``perf``).

These guard the vectorized search-space engine against silent regressions to scalar
behaviour: the ceilings are *generous* (an order of magnitude above the engine's
typical timings on any reasonable machine) so they never flake, yet a fallback to
per-config Python loops -- which is 50--500x slower on these workloads -- trips them
immediately, without anyone having to run the full figure pipeline.

Run them with ``pytest -m perf`` (also included in plain ``pytest`` runs; see
``scripts/run_perf.sh --smoke``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.graph.centrality import proportion_of_centrality
from repro.graph.ffg import build_ffg

pytestmark = pytest.mark.perf

#: Wall-clock ceilings in seconds, deliberately loose (see module docstring).
SAMPLE_10K_DEDISPERSION_CEILING_S = 10.0
FFG_2K_CEILING_S = 10.0
COUNT_GEMM_CEILING_S = 10.0
SHARDED_CAMPAIGN_10K_CEILING_S = 20.0
TUNER_CAMPAIGN_CEILING_S = 3.0
POPULATION_CAMPAIGN_CEILING_S = 3.0
EVALUATE_INDEX_20K_CEILING_S = 2.0
HASHED_BATCH_LOOKUP_CEILING_S = 10.0
CACHE_REPLAY_OPEN_CEILING_S = 2.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_batched_sampling_10k_dedispersion_under_ceiling(benchmarks):
    space = benchmarks["dedispersion"].space
    configs, elapsed = _timed(
        lambda: space.sample(10_000, rng=2023, valid_only=True, unique=True))
    assert len(configs) == 10_000
    assert elapsed < SAMPLE_10K_DEDISPERSION_CEILING_S, (
        f"sampling 10k Dedispersion configurations took {elapsed:.2f}s "
        f"(ceiling {SAMPLE_10K_DEDISPERSION_CEILING_S}s); the vectorized sampling "
        f"path has likely regressed to scalar rejection")


def test_ffg_and_pagerank_on_2k_cache_under_ceiling(benchmarks, gpu_3090):
    cache = benchmarks["hotspot"].build_cache(gpu_3090, sample_size=2_000, seed=1)
    (graph, report), elapsed = _timed(
        lambda: ((g := build_ffg(cache)), proportion_of_centrality(cache, ffg=g)))
    assert graph.num_nodes > 0 and report.num_minima > 0
    assert elapsed < FFG_2K_CEILING_S, (
        f"FFG + PageRank on a 2k-point cache took {elapsed:.2f}s "
        f"(ceiling {FFG_2K_CEILING_S}s); the index-arithmetic FFG build has likely "
        f"regressed to the dictionary loop")


def test_sharded_campaign_execution_under_ceiling(benchmarks, gpus):
    # One 10k-sample unit through the execution subsystem (plan -> shards ->
    # evaluate -> merge).  The ceiling guards the subsystem's per-shard and merge
    # overhead: a regression to per-config Python dispatch (or an accidental
    # re-sampling per shard) blows well past it.
    from repro.exec import SerialExecutor, ShardPlanner

    selected = {"hotspot": benchmarks["hotspot"]}
    gpu = {"RTX_3090": gpus["RTX_3090"]}
    planner = ShardPlanner(selected, gpu, sample_size=10_000, seed=2023)
    caches, elapsed = _timed(lambda: SerialExecutor().run(
        planner.plan(), benchmarks=selected, gpus=gpu))
    assert len(caches[("hotspot", "RTX_3090")]) == 10_000
    assert elapsed < SHARDED_CAMPAIGN_10K_CEILING_S, (
        f"sharded 10k hotspot campaign took {elapsed:.2f}s "
        f"(ceiling {SHARDED_CAMPAIGN_10K_CEILING_S}s); the execution subsystem's "
        f"shard or merge path has likely regressed to per-config dispatch")


def test_fault_tolerant_happy_path_overhead_under_ceiling(benchmarks, gpus,
                                                          tmp_path):
    # The same 10k-sample campaign with the fault-tolerance layer fully armed
    # (retry policy, shard timeout, checkpointing with checksummed fragments)
    # but no fault ever firing.  The machinery's no-fault overhead is a few
    # dict lookups per shard plus one SHA-256 per fragment; anything that makes
    # it per-config (or re-hashes rows per retry check) blows the ceiling.
    from repro.exec import CheckpointStore, RetryPolicy, SerialExecutor, ShardPlanner

    selected = {"hotspot": benchmarks["hotspot"]}
    gpu = {"RTX_3090": gpus["RTX_3090"]}
    planner = ShardPlanner(selected, gpu, sample_size=10_000, seed=2023)
    executor = SerialExecutor(retry_policy=RetryPolicy(max_retries=3),
                              shard_timeout=600.0)
    caches, elapsed = _timed(lambda: executor.run(
        planner.plan(), benchmarks=selected, gpus=gpu,
        checkpoint=CheckpointStore(tmp_path / "ckpt")))
    assert len(caches[("hotspot", "RTX_3090")]) == 10_000
    assert executor.retry_counts == {} and executor.quarantine == []
    assert elapsed < SHARDED_CAMPAIGN_10K_CEILING_S, (
        f"fault-tolerant 10k hotspot campaign took {elapsed:.2f}s "
        f"(ceiling {SHARDED_CAMPAIGN_10K_CEILING_S}s); the retry/checkpoint "
        f"layer is adding per-config overhead to the no-fault happy path")


def test_index_native_tuner_campaign_under_ceiling(benchmarks, gpu_3090):
    # A compressed version of the BENCH_perf tuner campaign: LocalSearch +
    # GreedyILS, 100 seeded runs each of 150 evaluations, replayed against a
    # sampled hotspot cache.  The index-native runtime finishes this in well under
    # half a second; a regression to the dictionary loop (config dicts per
    # neighbour, config-key hashing per evaluation, per-row constraint dispatch)
    # lands this campaign beyond the ceiling even on fast machines.
    from repro.core.budget import Budget
    from repro.tuners import GreedyILS, LocalSearch

    cache = benchmarks["hotspot"].build_cache(gpu_3090, sample_size=2_000, seed=1)
    cache.index_table()

    def campaign():
        evaluations = 0
        for factory in (LocalSearch, GreedyILS):
            for seed in range(100):
                problem = cache.to_problem(strict=False)
                result = factory().tune(problem, Budget(max_evaluations=150),
                                        seed=seed)
                evaluations += len(result)
        return evaluations

    evaluations, elapsed = _timed(campaign)
    assert evaluations == 2 * 100 * 150
    assert elapsed < TUNER_CAMPAIGN_CEILING_S, (
        f"200-run index-native tuner campaign took {elapsed:.2f}s "
        f"(ceiling {TUNER_CAMPAIGN_CEILING_S}s); the tuner hot loop has likely "
        f"regressed to the dictionary path")


def test_population_campaign_under_ceiling(benchmarks, gpu_3090):
    # A compressed version of the BENCH_perf population campaign: genetic /
    # differential evolution / particle swarm, 15 seeded runs each of 150
    # evaluations, replayed against a sampled gemm cache (feasible memo built
    # on demand -- gemm sits under the memoize threshold).  The
    # generation-batched runtime finishes this in well under half a second; a
    # regression to per-candidate budget charges, per-parameter decode scans or
    # constraint-eval repair draws lands beyond the ceiling even on fast
    # machines.
    from repro.core.budget import Budget
    from repro.tuners import (DifferentialEvolution, GeneticAlgorithm,
                              ParticleSwarm)

    cache = benchmarks["gemm"].build_cache(gpu_3090, sample_size=2_000, seed=1)
    cache.index_table()
    cache.space.feasible_indices()

    def campaign():
        evaluations = 0
        for factory in (GeneticAlgorithm, DifferentialEvolution, ParticleSwarm):
            for seed in range(15):
                problem = cache.to_problem(strict=False)
                result = factory().tune(problem, Budget(max_evaluations=150),
                                        seed=seed)
                evaluations += len(result)
        return evaluations

    evaluations, elapsed = _timed(campaign)
    # A GA run whose whole initial population replays as cache misses stops
    # after it (algorithm behaviour, identical to the sequential loop), so a
    # handful of the 45 runs may legitimately end early.
    assert evaluations >= 6_000
    assert elapsed < POPULATION_CAMPAIGN_CEILING_S, (
        f"45-run generation-batched population campaign took {elapsed:.2f}s "
        f"(ceiling {POPULATION_CAMPAIGN_CEILING_S}s); the batched population "
        f"runtime has likely regressed to per-candidate loops")


def test_evaluate_index_throughput_under_ceiling(benchmarks, gpu_3090):
    # 20k single-index evaluations against a replay problem: guards the scalar
    # fast path itself (columnar lookup, lazy configs, fast observation
    # construction) independently of any tuner's loop structure.
    cache = benchmarks["gemm"].build_cache(gpu_3090, sample_size=2_000, seed=1)
    cache.index_table()
    problem = cache.to_problem(strict=False)
    space = cache.space
    indices = np.random.default_rng(0).integers(0, space.cardinality, size=20_000)

    def evaluate_all():
        evaluate = problem.evaluate_index
        for index in indices.tolist():
            evaluate(index, _valid_hint=True)
        return problem.evaluation_count

    _, elapsed = _timed(evaluate_all)
    assert elapsed < EVALUATE_INDEX_20K_CEILING_S, (
        f"20k evaluate_index calls took {elapsed:.2f}s "
        f"(ceiling {EVALUATE_INDEX_20K_CEILING_S}s); the index-native evaluation "
        f"fast path has likely regressed to dictionary round-trips")


def test_hashed_batch_lookup_under_ceiling(benchmarks, gpu_3090):
    # 5M batched probes against a hashed (above-dense-ceiling) index table: the
    # searchsorted batch path answers this in well under a second, while the old
    # per-probe dict.get loop (or a regression back to it) takes several seconds.
    cache = benchmarks["dedispersion"].build_cache(gpu_3090, sample_size=5_000,
                                                   seed=1)
    table = cache.index_table()
    assert not table._dense  # dedispersion cardinality exceeds the dense ceiling
    space = cache.space
    stored = space.indices_of_configs([dict(o.config) for o in cache])
    rng = np.random.default_rng(3)
    probes = np.concatenate([
        np.tile(stored, 500),
        rng.integers(0, space.cardinality, size=2_500_000),
    ])

    def batch_lookup():
        values, failure, found = table.lookup(probes)
        return int(found.sum())

    hits, elapsed = _timed(batch_lookup)
    assert hits >= stored.size * 500
    assert elapsed < HASHED_BATCH_LOOKUP_CEILING_S, (
        f"5M hashed batch lookups took {elapsed:.2f}s "
        f"(ceiling {HASHED_BATCH_LOOKUP_CEILING_S}s); the searchsorted batch path "
        f"has likely regressed to per-probe dictionary lookups")


def test_columnar_replay_open_under_ceiling(benchmarks, gpu_3090, tmp_path):
    # A compressed version of the BENCH_perf cache_replay_open entry: open a
    # 20k-row columnar campaign cache and serve index-table probes off the
    # memory-mapped columns.  The columnar open is header + checksums + an
    # index-table build over three mapped arrays -- tens of milliseconds; any
    # regression that rehydrates the observation dictionary on open (the cost
    # the format exists to avoid) blows the ceiling.
    from repro.core.cache import EvaluationCache

    cache = benchmarks["hotspot"].build_cache(gpu_3090, sample_size=20_000,
                                              seed=1)
    path = cache.to_columnar(tmp_path / "replay.col")
    probe = cache.space.sample_indices(1_024, rng=7, valid_only=True,
                                       unique=True)

    def open_and_probe():
        loaded = EvaluationCache.from_columnar(path, space=cache.space)
        result = loaded.index_table().lookup(probe)
        assert loaded._lazy is not None  # probes must not have materialized
        return result

    (values, failure, found), elapsed = _timed(open_and_probe)
    assert found.size == probe.size
    assert elapsed < CACHE_REPLAY_OPEN_CEILING_S, (
        f"columnar mmap open + 1k probes took {elapsed:.2f}s "
        f"(ceiling {CACHE_REPLAY_OPEN_CEILING_S}s); the columnar open has "
        f"likely regressed to eager observation rehydration")


def test_exact_constrained_count_gemm_under_ceiling(benchmarks):
    space = benchmarks["gemm"].space
    count, elapsed = _timed(lambda: space.count_constrained(limit=None))
    assert count == 17_956  # paper Table VIII
    assert elapsed < COUNT_GEMM_CEILING_S, (
        f"exact GEMM constrained count took {elapsed:.2f}s "
        f"(ceiling {COUNT_GEMM_CEILING_S}s); the compiled constraint masks have "
        f"likely regressed to per-config evaluation")
