"""Tests of the analysis layer (one module per paper figure/table) and the registries."""

from __future__ import annotations


import numpy as np
import pytest

from repro import benchmark_suite, get_benchmark, get_gpu, get_tuner, gpu_catalog, tuner_catalog
from repro.analysis import report
from repro.analysis.campaign import Campaign, PAPER_SAMPLE_SIZE, PAPER_SAMPLED_BENCHMARKS
from repro.analysis.centrality_report import centrality_study
from repro.analysis.convergence import evaluations_to_reach, random_search_convergence
from repro.analysis.distribution import distribution_summary
from repro.analysis.importance import feature_importance, important_parameters, importance_study
from repro.analysis.portability import portability_matrix, portability_study
from repro.analysis.spacesize import PAPER_TABLE8, space_size_table
from repro.analysis.speedup import max_speedup_over_median, speedup_study
from repro.core.errors import ReproError


class TestRegistries:
    def test_benchmark_suite_and_lookup(self):
        suite = benchmark_suite()
        assert len(suite) == 7
        assert get_benchmark("GEMM").name == "gemm"
        with pytest.raises(ReproError):
            get_benchmark("not_a_kernel")

    def test_gpu_catalog_and_lookup(self):
        assert len(gpu_catalog()) == 4
        assert get_gpu("rtx 3090").name == "RTX_3090"
        assert get_gpu("RTX-2080-Ti").name == "RTX_2080_Ti"
        with pytest.raises(ReproError):
            get_gpu("GTX_480")

    def test_tuner_catalog_and_lookup(self):
        catalog = tuner_catalog()
        assert "random" in catalog and "genetic" in catalog
        tuner = get_tuner("random", seed=3)
        assert tuner.seed == 3
        with pytest.raises(ReproError):
            get_tuner("hillwalker")


class TestCampaign:
    def test_paper_protocol_constants(self):
        assert PAPER_SAMPLE_SIZE == 10_000
        assert PAPER_SAMPLED_BENCHMARKS == {"hotspot", "dedispersion", "expdist"}

    def test_sampling_policy(self, small_campaign):
        assert small_campaign.is_sampled("hotspot")
        assert not small_campaign.is_sampled("pnpoly")
        # exhaustive_limit forces convolution (18 432 > 10 000) into sampling too.
        assert small_campaign.is_sampled("convolution")
        assert small_campaign.campaign_sample_size("pnpoly") is None
        assert small_campaign.campaign_sample_size("hotspot") == 400

    def test_caches_are_memoized(self, small_campaign):
        a = small_campaign.cache("pnpoly", "RTX_3090")
        b = small_campaign.cache("pnpoly", "RTX_3090")
        assert a is b

    def test_caches_for_benchmark(self, small_campaign):
        caches = small_campaign.caches_for_benchmark("pnpoly")
        assert set(caches) == {"RTX_3090", "RTX_2080_Ti"}

    def test_summary_and_roundtrip(self, small_campaign, tmp_path):
        small_campaign.cache("pnpoly", "RTX_3090")
        rows = small_campaign.summary()
        assert any(r["benchmark"] == "pnpoly" for r in rows)
        written = small_campaign.save(tmp_path)
        assert written
        fresh = Campaign({"pnpoly": benchmark_suite()["pnpoly"]},
                         {"RTX_3090": gpu_catalog()["RTX_3090"]})
        assert fresh.load(tmp_path) >= 1
        assert len(fresh.cache("pnpoly", "RTX_3090")) == len(small_campaign.cache("pnpoly", "RTX_3090"))


class TestDistribution:
    def test_summary_fields(self, pnpoly_cache_3090):
        summary = distribution_summary(pnpoly_cache_3090)
        assert summary.num_configs == pnpoly_cache_3090.num_valid
        assert summary.best_ms < summary.median_ms < summary.worst_ms
        assert summary.max_speedup_over_median == pytest.approx(
            summary.median_ms / summary.best_ms)
        assert 0.0 < summary.fraction_within_10pct_of_best < 1.0
        assert summary.percentiles[50] == pytest.approx(1.0, rel=1e-6)
        assert summary.histogram_density.shape[0] == summary.histogram_edges.shape[0] - 1

    def test_histogram_is_a_density(self, pnpoly_cache_3090):
        summary = distribution_summary(pnpoly_cache_3090, bins=40)
        widths = np.diff(summary.histogram_edges)
        assert float(np.sum(summary.histogram_density * widths)) == pytest.approx(1.0)

    def test_to_dict(self, pnpoly_cache_3090):
        data = distribution_summary(pnpoly_cache_3090).to_dict()
        assert data["benchmark"] == "pnpoly"
        assert "histogram_density" in data


class TestConvergence:
    def test_median_curve_properties(self, pnpoly_cache_3090):
        curve = random_search_convergence(pnpoly_cache_3090, repetitions=30, budget=300, seed=1)
        rel = curve.median_relative_performance
        assert rel.shape == (300,)
        assert np.all(np.diff(rel) >= -1e-12)           # monotone non-decreasing
        assert np.all((rel > 0) & (rel <= 1.0 + 1e-12))
        assert curve.quartile_low[-1] <= curve.quartile_high[-1]

    def test_full_budget_reaches_optimum(self, pnpoly_cache_3090):
        n = pnpoly_cache_3090.num_valid
        curve = random_search_convergence(pnpoly_cache_3090, repetitions=5, budget=n, seed=0)
        assert curve.median_relative_performance[-1] == pytest.approx(1.0)

    def test_threshold_helpers(self, pnpoly_cache_3090):
        curve = random_search_convergence(pnpoly_cache_3090, repetitions=20, budget=200, seed=2)
        needed = curve.evaluations_to_reach(0.5)
        assert needed is not None and needed >= 1
        assert curve.at(needed) >= 0.5
        table = evaluations_to_reach([curve], threshold=0.5)
        assert table[("pnpoly", "RTX_3090")] == needed

    def test_reproducible(self, pnpoly_cache_3090):
        a = random_search_convergence(pnpoly_cache_3090, repetitions=10, budget=50, seed=3)
        b = random_search_convergence(pnpoly_cache_3090, repetitions=10, budget=50, seed=3)
        np.testing.assert_allclose(a.median_relative_performance,
                                   b.median_relative_performance)

    def test_invalid_repetitions(self, pnpoly_cache_3090):
        with pytest.raises(ReproError):
            random_search_convergence(pnpoly_cache_3090, repetitions=0)


class TestSpeedup:
    def test_entry_consistency(self, pnpoly_cache_3090):
        entry = max_speedup_over_median(pnpoly_cache_3090)
        assert entry.speedup == pytest.approx(entry.median_ms / entry.best_ms)
        assert entry.speedup > 1.0

    def test_study_covers_all_caches(self, small_campaign):
        caches = {("pnpoly", g): small_campaign.cache("pnpoly", g)
                  for g in ("RTX_3090", "RTX_2080_Ti")}
        entries = speedup_study(caches)
        assert len(entries) == 2


class TestPortability:
    @pytest.fixture(scope="class")
    def pnpoly_matrix(self, small_campaign, benchmarks, gpus):
        caches = small_campaign.caches_for_benchmark("pnpoly")
        return portability_matrix(benchmarks["pnpoly"], caches, gpus)

    def test_diagonal_is_one(self, pnpoly_matrix):
        np.testing.assert_allclose(np.diag(pnpoly_matrix.relative_performance), 1.0)

    def test_off_diagonal_at_most_one(self, pnpoly_matrix):
        assert np.all(pnpoly_matrix.relative_performance <= 1.0 + 1e-9)
        assert np.all(pnpoly_matrix.relative_performance > 0.0)

    def test_helpers(self, pnpoly_matrix):
        src, dst, value = pnpoly_matrix.worst_transfer()
        assert src != dst
        assert value == pytest.approx(pnpoly_matrix.entry(src, dst))
        assert 0.0 < pnpoly_matrix.mean_off_diagonal() <= 1.0

    def test_study_selects_exhaustive_benchmarks(self, small_campaign, benchmarks, gpus):
        caches = small_campaign.all_caches()
        matrices = portability_study(benchmarks, caches, gpus,
                                     benchmark_names=("pnpoly", "nbody"))
        assert set(matrices) == {"pnpoly", "nbody"}


class TestImportance:
    @pytest.fixture(scope="class")
    def pnpoly_report(self, pnpoly_cache_3090):
        return feature_importance(pnpoly_cache_3090, n_estimators=80, max_depth=4,
                                  n_repeats=2)

    def test_model_quality(self, pnpoly_report):
        assert pnpoly_report.r2 > 0.9
        assert pnpoly_report.n_samples > 1000

    def test_importances_cover_all_parameters(self, pnpoly_report):
        assert set(pnpoly_report.importances) == {"block_size_x", "tile_size",
                                                  "between_method", "use_method"}
        assert all(v >= -0.05 for v in pnpoly_report.importances.values())
        assert pnpoly_report.total_importance > 0.5

    def test_important_selects_threshold(self, pnpoly_report):
        keep = pnpoly_report.important(threshold=0.05)
        assert keep
        assert set(keep) <= set(pnpoly_report.importances)

    def test_important_parameters_across_reports(self, pnpoly_report):
        keep = important_parameters([pnpoly_report], threshold=0.05)
        assert set(keep) == set(pnpoly_report.important(0.05))
        with pytest.raises(ReproError):
            important_parameters([])

    def test_too_small_cache_raises(self, benchmarks, gpu_3090):
        cache = benchmarks["pnpoly"].build_cache(gpu_3090, sample_size=5, seed=0)
        with pytest.raises(ReproError):
            feature_importance(cache)


class TestCentralityStudyAndTable8:
    @pytest.fixture(scope="class")
    def importance_reports(self, small_campaign):
        caches = {("pnpoly", g): small_campaign.cache("pnpoly", g)
                  for g in ("RTX_3090", "RTX_2080_Ti")}
        return importance_study(caches, n_estimators=60, max_depth=4, n_repeats=2)

    def test_centrality_study_selection(self, small_campaign):
        caches = small_campaign.all_caches()
        reports = centrality_study(caches, benchmark_names=("pnpoly",),
                                   proportions=(0.05, 0.2))
        assert set(k[0] for k in reports) == {"pnpoly"}
        for rep in reports.values():
            assert len(rep.values) == 2

    def test_space_size_table(self, benchmarks, gpus, importance_reports, small_campaign):
        selected = {"pnpoly": benchmarks["pnpoly"]}
        selected_gpus = {name: gpus[name] for name in ("RTX_3090", "RTX_2080_Ti")}
        caches = {("pnpoly", g): small_campaign.cache("pnpoly", g)
                  for g in ("RTX_3090", "RTX_2080_Ti")}
        rows = space_size_table(selected, selected_gpus, importance_reports, caches=caches)
        assert len(rows) == 1
        row = rows[0]
        assert row.cardinality == 4_092
        assert row.constrained == 4_092
        assert row.valid_range is not None
        assert row.valid_range[0] <= row.valid_range[1] <= 4_092
        assert 0 < row.reduced <= 4_092
        assert 0 < row.reduce_constrained <= row.reduced
        assert row.to_dict()["paper"] == PAPER_TABLE8["pnpoly"]

    def test_paper_table8_reference_complete(self):
        assert set(PAPER_TABLE8) == {"pnpoly", "nbody", "convolution", "gemm",
                                     "expdist", "hotspot", "dedispersion"}


class TestReportRendering:
    def test_format_table_alignment(self):
        text = report.format_table(("a", "bb"), [(1, 2), (333, 4)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, separator, two data rows

    def test_all_formatters_produce_text(self, small_campaign, benchmarks, gpus):
        caches = {("pnpoly", g): small_campaign.cache("pnpoly", g)
                  for g in ("RTX_3090", "RTX_2080_Ti")}
        summaries = [distribution_summary(c) for c in caches.values()]
        curves = [random_search_convergence(c, repetitions=10, budget=50) for c in caches.values()]
        speedups = speedup_study(caches)
        matrices = portability_study(benchmarks, caches, gpus, benchmark_names=("pnpoly",))
        importances = importance_study(caches, n_estimators=30, max_depth=3, n_repeats=1)
        centrality = centrality_study(caches, benchmark_names=("pnpoly",), proportions=(0.1,))

        for text in (
            report.format_parameter_table("pnpoly", benchmarks["pnpoly"].parameter_table(),
                                          "Table IV"),
            report.format_distribution(summaries),
            report.format_convergence(curves),
            report.format_speedups(speedups),
            report.format_portability(matrices),
            report.format_importance(importances),
            report.format_centrality(centrality),
        ):
            assert isinstance(text, str) and len(text.splitlines()) >= 3
