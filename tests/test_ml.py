"""Tests of the ML substrate: regression tree, GBDT, metrics, encoding, PFI."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.encoding import encode_cache
from repro.ml.gbdt import GradientBoostingRegressor
from repro.ml.metrics import mae, r2_score, rmse
from repro.ml.permutation_importance import permutation_importance
from repro.ml.tree import DecisionTreeRegressor


def _make_regression(n=400, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 8, size=(n, 4)).astype(float)
    y = (3.0 * X[:, 0] + X[:, 1] ** 2 - 2.0 * X[:, 2] + noise * rng.standard_normal(n))
    return X, y


class TestMetrics:
    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        y = np.ones(5)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_rmse_and_mae(self):
        y = np.array([0.0, 0.0])
        p = np.array([3.0, 4.0])
        assert rmse(y, p) == pytest.approx(np.sqrt(12.5))
        assert mae(y, p) == pytest.approx(3.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            r2_score(np.ones(3), np.ones(4))

    def test_empty_input(self):
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))


class TestDecisionTree:
    def test_fits_simple_step_function(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [5.0]])
        y = np.array([0.0, 0.0, 0.0, 10.0, 10.0, 10.0])
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)

    def test_constant_target_single_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 3.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.node_count == 1
        np.testing.assert_allclose(tree.predict(X), 3.0)

    def test_depth_limit_respected(self):
        X, y = _make_regression()
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        # A depth-2 binary tree has at most 7 nodes.
        assert tree.node_count <= 7

    def test_deeper_trees_fit_better(self):
        X, y = _make_regression()
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8).fit(X, y)
        assert r2_score(y, deep.predict(X)) > r2_score(y, shallow.predict(X))

    def test_min_samples_leaf(self):
        X, y = _make_regression(n=50)
        tree = DecisionTreeRegressor(max_depth=10, min_samples_leaf=25).fit(X, y)
        assert tree.node_count <= 3

    def test_feature_importances_identify_relevant_feature(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 10, size=(300, 3)).astype(float)
        y = 5.0 * X[:, 1]  # only feature 1 matters
        tree = DecisionTreeRegressor(max_depth=5).fit(X, y)
        importances = tree.feature_importances_
        assert importances[1] > 0.95
        assert importances.sum() == pytest.approx(1.0)

    def test_input_validation(self):
        tree = DecisionTreeRegressor()
        with pytest.raises(ValueError):
            tree.fit(np.ones((3, 2)), np.ones(4))
        with pytest.raises(ValueError):
            tree.fit(np.ones(3), np.ones(3))
        with pytest.raises(RuntimeError):
            tree.predict(np.ones((2, 2)))
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)

    def test_predict_shape_check(self):
        X, y = _make_regression(n=50)
        tree = DecisionTreeRegressor().fit(X, y)
        with pytest.raises(ValueError):
            tree.predict(np.ones((5, 7)))


class TestGBDT:
    def test_outperforms_single_tree(self):
        X, y = _make_regression(noise=0.5)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        gbdt = GradientBoostingRegressor(n_estimators=60, max_depth=3,
                                         learning_rate=0.2, random_state=0).fit(X, y)
        assert gbdt.score(X, y) > r2_score(y, tree.predict(X))
        assert gbdt.score(X, y) > 0.95

    def test_training_score_monotone_improvement(self):
        X, y = _make_regression()
        gbdt = GradientBoostingRegressor(n_estimators=30, random_state=0).fit(X, y)
        assert gbdt.train_score_[-1] >= gbdt.train_score_[0]

    def test_subsampling_reproducible(self):
        X, y = _make_regression()
        a = GradientBoostingRegressor(n_estimators=15, subsample=0.7, random_state=1).fit(X, y)
        b = GradientBoostingRegressor(n_estimators=15, subsample=0.7, random_state=1).fit(X, y)
        np.testing.assert_allclose(a.predict(X), b.predict(X))

    def test_feature_importances_sum_to_one(self):
        X, y = _make_regression()
        gbdt = GradientBoostingRegressor(n_estimators=20, random_state=0).fit(X, y)
        assert gbdt.feature_importances_.sum() == pytest.approx(1.0)
        assert gbdt.feature_importances_[3] < 0.05  # feature 3 is irrelevant

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.ones((2, 2)))


class TestPermutationImportance:
    def test_identifies_important_features(self):
        X, y = _make_regression(noise=0.1)
        model = GradientBoostingRegressor(n_estimators=50, random_state=0).fit(X, y)
        result = permutation_importance(model, X, y, n_repeats=3, random_state=0,
                                        feature_names=("a", "b", "c", "d"))
        scores = result.as_dict()
        assert scores["b"] > scores["d"]
        assert scores["a"] > scores["d"]
        assert scores["d"] < 0.05
        assert result.baseline_score > 0.9
        ranked = result.ranked()
        assert ranked[0][1] >= ranked[-1][1]

    def test_reproducible(self):
        X, y = _make_regression()
        model = GradientBoostingRegressor(n_estimators=20, random_state=0).fit(X, y)
        a = permutation_importance(model, X, y, n_repeats=2, random_state=4)
        b = permutation_importance(model, X, y, n_repeats=2, random_state=4)
        np.testing.assert_allclose(a.importances_mean, b.importances_mean)

    def test_input_validation(self):
        X, y = _make_regression(n=20)
        model = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(X, y)
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(ValueError):
            permutation_importance(model, X[:10], y, n_repeats=1)


class TestEncoding:
    def test_encode_cache(self, pnpoly_cache_3090):
        matrix = encode_cache(pnpoly_cache_3090)
        assert matrix.n_samples == pnpoly_cache_3090.num_valid
        assert matrix.n_features == 4
        assert matrix.feature_names == pnpoly_cache_3090.space.parameter_names
        assert matrix.log_target
        np.testing.assert_allclose(np.exp(matrix.y), matrix.y_raw, rtol=1e-10)

    def test_encode_cache_raw_target(self, pnpoly_cache_3090):
        matrix = encode_cache(pnpoly_cache_3090, log_target=False)
        np.testing.assert_allclose(matrix.y, matrix.y_raw)

    def test_gbdt_reaches_high_r2_on_campaign_data(self, pnpoly_cache_3090):
        matrix = encode_cache(pnpoly_cache_3090)
        model = GradientBoostingRegressor(n_estimators=120, max_depth=5,
                                          random_state=0).fit(matrix.X, matrix.y)
        assert model.score(matrix.X, matrix.y) > 0.95


@given(seed=st.integers(min_value=0, max_value=1000),
       depth=st.integers(min_value=1, max_value=6))
@settings(max_examples=20, deadline=None)
def test_property_tree_predictions_within_target_range(seed, depth):
    """Tree predictions are convex combinations of training targets."""
    rng = np.random.default_rng(seed)
    X = rng.integers(0, 5, size=(60, 3)).astype(float)
    y = rng.uniform(-10, 10, size=60)
    tree = DecisionTreeRegressor(max_depth=depth).fit(X, y)
    predictions = tree.predict(X)
    assert predictions.min() >= y.min() - 1e-9
    assert predictions.max() <= y.max() + 1e-9
