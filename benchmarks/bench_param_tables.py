"""Tables I--VII: the tunable-parameter tables of the seven benchmarks.

These tables are definitional rather than measured; the benchmark checks that the
reproduction's parameter lists regenerate the paper's per-parameter value counts and
renders them in the paper's format.
"""

from __future__ import annotations

from repro.analysis import report

from conftest import write_result

PAPER_TABLE_NUMBERS = {
    "gemm": "Table I",
    "nbody": "Table II",
    "hotspot": "Table III",
    "pnpoly": "Table IV",
    "convolution": "Table V",
    "expdist": "Table VI",
    "dedispersion": "Table VII",
}


def test_tables_1_to_7_parameter_tables(benchmark, benchmarks):
    """Render Tables I--VII and verify the per-parameter counts multiply to Table VIII."""

    def build():
        blocks = []
        for name, bench in benchmarks.items():
            table = bench.parameter_table()
            blocks.append(report.format_parameter_table(
                bench.display_name, table, PAPER_TABLE_NUMBERS[name]))
            product = 1
            for row in table:
                product *= row["count"]
            assert product == bench.space.cardinality
        return "\n\n".join(blocks)

    text = benchmark.pedantic(build, rounds=1, iterations=1)
    write_result("tables_1_to_7_parameters.txt", text)
    assert "MWG" in text and "block_size_x" in text
