"""Micro-benchmark harness for the vectorized search-space engine.

Times the hot paths the engine rewired -- batched unique sampling, fitness-flow graph
construction, exact constrained counting, sharded campaign execution, and the
index-native tuner runtime -- against faithful re-creations of the seed repository's
scalar/dictionary implementations (or the serial reference executor), asserts that
both produce identical results, and writes the timings to ``BENCH_perf.json`` so
before/after comparisons survive the run.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py [--output BENCH_perf.json]

or via ``scripts/run_perf.sh``.
"""

from __future__ import annotations

import argparse
import gc
import itertools
import json
import math
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.budget import Budget
from repro.core.cache import EvaluationCache
from repro.core.searchspace import SearchSpace, config_key
from repro.exec import ParallelExecutor, SerialExecutor, ShardPlanner
from repro.io.cachefile import load_cache, save_cache
from repro.gpus.specs import RTX_3090, all_gpus
from repro.graph.centrality import proportion_of_centrality
from repro.graph.ffg import build_ffg
from repro.graph.pagerank import pagerank
from repro.kernels import all_benchmarks
from repro.tuners import (
    DifferentialEvolution,
    GeneticAlgorithm,
    GreedyILS,
    LocalSearch,
    ParticleSwarm,
)
from repro.tuners.base import Tuner

SAMPLE_N = 10_000
FFG_CACHE_POINTS = 2_000
CAMPAIGN_WORKERS = 4
TUNER_CAMPAIGN_RUNS = 50       # per optimizer; LocalSearch + GreedyILS = 100 runs
TUNER_CAMPAIGN_BUDGET = 100
TUNER_CAMPAIGN_CACHE_POINTS = 2_000
POPULATION_CAMPAIGN_RUNS = 15  # per optimizer; GA + DE + PSO = 45 runs
POPULATION_CAMPAIGN_BUDGET = 150
POPULATION_CAMPAIGN_CACHE_POINTS = 2_000
REPLAY_CACHE_POINTS = 100_000  # rows in the cache_replay_open cache


# ----------------------------------------------------------- scalar reference paths
#
# These reproduce the seed implementation's per-config Python loops so the "before"
# timings stay measurable after the scalar code paths were replaced.


def sample_scalar(space: SearchSpace, n: int, seed: int) -> list[dict]:
    """The seed's one-index-at-a-time rejection sampling (unique, valid)."""
    rng = np.random.default_rng(seed)
    out: list[dict] = []
    seen: set[int] = set()
    while len(out) < n:
        idx = int(rng.integers(0, space.cardinality))
        if idx in seen:
            continue
        config = space.config_at(idx)
        if not space.constraints.is_satisfied(config):
            continue
        seen.add(idx)
        out.append(config)
    return out


def count_constrained_scalar(space: SearchSpace) -> int:
    """The seed's exact count: full itertools enumeration, one eval per config."""
    names = space.parameter_names
    value_lists = [p.values for p in space.parameters]
    constraints = space.constraints
    return sum(1 for combo in itertools.product(*value_lists)
               if constraints.is_satisfied(dict(zip(names, combo))))


def _seed_mask(space: SearchSpace, digits: np.ndarray) -> np.ndarray:
    """The seed's constraint mask: every value column gathered eagerly before the
    batch evaluators run (the path lazy column gathering replaced)."""
    columns = space.columns_at(None, digits=digits)
    return space.constraints.satisfied_mask(columns, digits.shape[0])


def sample_one_seed(space: SearchSpace, rng: np.random.Generator) -> dict:
    """The seed's restart draw: size-1 index blocks through the eager-column mask
    (same random stream as the batched sampler and the scalar loop)."""
    while True:
        draws = rng.integers(0, space.cardinality, size=1)
        if bool(_seed_mask(space, space.indices_to_digits(draws))[0]):
            return space.configs_at(draws)[0]


def neighbors_seed(space: SearchSpace, config: dict, strategy: str = "hamming") -> list[dict]:
    """The seed's neighbourhood: per-candidate Python assembly, one eager-column
    mask over the block, one dictionary copy per surviving candidate."""
    candidates: list[tuple[str, object]] = []
    for p in space.parameters:
        current = config[p.name]
        others = (p.all_other_values(current) if strategy == "hamming"
                  else p.neighbors(current))
        candidates.extend((p.name, v) for v in others)
    if not candidates:
        return []
    base = space.indices_to_digits([space.index_of(config)])
    digits = np.repeat(base, len(candidates), axis=0)
    col_of = {p.name: j for j, p in enumerate(space.parameters)}
    for row, (name, value) in enumerate(candidates):
        digits[row, col_of[name]] = space.parameter(name).index_of(value)
    keep = _seed_mask(space, digits)
    out: list[dict] = []
    for ok, (name, value) in zip(keep.tolist(), candidates):
        if ok:
            neighbor = dict(config)
            neighbor[name] = value
            out.append(neighbor)
    return out


class _SeedDictTuner(Tuner):
    """Base of the seed dict-path re-creations: config_key duplicate accounting."""

    def _account(self, config, observation):
        key = config_key(config)
        new_config = key not in self._seen
        simulated_seconds = (observation.value / 1e3
                             if math.isfinite(observation.value) else 0.0)
        self._budget.charge(simulated_seconds=simulated_seconds, new_config=new_config)
        self._seen.add(key)
        self._result.record(observation)


class SeedLocalSearch(_SeedDictTuner):
    """The seed's dictionary-based first-improvement local search."""

    name = "local"

    def __init__(self, seed=None, neighborhood="hamming"):
        super().__init__(seed=seed)
        self.neighborhood = neighborhood

    def _run(self, problem, budget, rng):
        while not self.budget_exhausted:
            self._climb(problem, sample_one_seed(problem.space, rng), rng)

    def _climb(self, problem, start, rng):
        current = self.evaluate(start)
        if current is None:
            return
        while not self.budget_exhausted:
            neighbors = neighbors_seed(problem.space, current.config,
                                       strategy=self.neighborhood)
            if not neighbors:
                return
            order = rng.permutation(len(neighbors))
            improved = None
            for idx in order:
                obs = self.evaluate(neighbors[int(idx)])
                if obs is None:
                    return
                if not obs.is_failure and obs.value < current.value:
                    improved = obs
                    break
            if improved is None:
                return
            current = improved


class SeedGreedyILS(_SeedDictTuner):
    """The seed's dictionary-based greedy iterated local search."""

    name = "greedy_ils"

    def __init__(self, seed=None, perturbation_strength=2, neighborhood="hamming"):
        super().__init__(seed=seed)
        self.perturbation_strength = perturbation_strength
        self.neighborhood = neighborhood

    def _perturb(self, problem, config, rng):
        perturbed = dict(config)
        names = list(problem.space.parameter_names)
        chosen = rng.choice(len(names), size=min(self.perturbation_strength, len(names)),
                            replace=False)
        for idx in chosen:
            parameter = problem.space.parameter(names[int(idx)])
            perturbed[parameter.name] = parameter.sample(rng)
        if problem.space.is_valid(perturbed):
            return perturbed
        return sample_one_seed(problem.space, rng)

    def _run(self, problem, budget, rng):
        climber = SeedLocalSearch(neighborhood=self.neighborhood)
        climber._problem = self._problem
        climber._budget = self._budget
        climber._result = self._result
        climber._seen = self._seen
        incumbent = sample_one_seed(problem.space, rng)
        while not self.budget_exhausted:
            climber._climb(problem, incumbent, rng)
            best = self.best_so_far()
            base = dict(best.config) if best is not None else incumbent
            incumbent = self._perturb(problem, base, rng)


# -------------------------------------------- pre-batching population inner loops
#
# Faithful re-creations of the per-candidate population loops the
# generation-batched runtime replaced: one `evaluate_index` (one budget charge, one
# result record) per candidate, per-gene scalar crossover draws, nearest-value
# decoding through a per-parameter Python scan that re-materialises each
# parameter's numeric grid (and re-derives its numericness) on every candidate,
# eval-dispatched per-candidate feasibility, and repair draws through size-1
# membership blocks.  Same RNG streams, same trajectories -- only the loop
# structure and the per-candidate costs differ.


def is_numeric_seed(p) -> bool:
    """The seed's uncached numericness test (one isinstance scan per call)."""
    return all(isinstance(v, (int, float, np.integer, np.floating))
               for v in p.values)


def numeric_values_seed(p) -> np.ndarray:
    """The seed's uncached per-call numeric grid of one parameter."""
    if is_numeric_seed(p):
        return np.asarray(p.values, dtype=float)
    return np.arange(len(p.values), dtype=float)


def decode_index_seed(space, vector) -> int:
    """The seed's nearest-member decode: one Python argmin scan per parameter."""
    digits = np.empty(space.dimensions, dtype=np.int64)
    for j, (p, x) in enumerate(zip(space.parameters, vector)):
        digits[j] = int(np.argmin(np.abs(numeric_values_seed(p) - float(x))))
    return int(digits @ np.asarray(space.place_values))


def encode_indices_seed(space, indices) -> np.ndarray:
    """The seed's index encoder: per-parameter numericness re-derived per call."""
    digits = space.indices_to_digits(indices)
    out = np.empty((digits.shape[0], space.dimensions), dtype=float)
    for j, p in enumerate(space.parameters):
        if is_numeric_seed(p):
            out[:, j] = p.values_array()[digits[:, j]].astype(float)
        else:
            out[:, j] = digits[:, j].astype(float)
    return out


def index_is_feasible_seed(space, index) -> bool:
    """The seed's per-candidate feasibility: compiled-conjunction eval dispatch
    (no feasible-set membership shortcut)."""
    if not len(space.constraints):
        return True
    rows = space._feasibility_rows()
    if rows is None:
        return space.constraints.is_satisfied(space.config_at(index))
    return space.constraints.is_satisfied_fast(
        {name: values[(index // place) % radix]
         for name, values, place, radix in rows})


def sample_one_index_seed(space, rng) -> int:
    """The seed's repair draw: size-1 rejection blocks, membership by a
    fromnumeric searchsorted per attempt (the memoized-space path of the
    pre-batching sampler).  Random stream identical to the scalar loop."""
    feasible = space.feasible_indices()
    if feasible is None:
        return space.sample_one_index(rng=rng, valid_only=True)
    while True:
        draws = rng.integers(0, space.cardinality, size=1)
        pos = np.searchsorted(feasible, draws)
        pos[pos == feasible.size] = 0
        if bool((feasible[pos] == draws)[0]):
            return int(draws[0])


class SeedGeneticAlgorithm(Tuner):
    """The pre-batching steady-state GA: per-gene draws, per-child evaluation."""

    name = "genetic"

    def __init__(self, seed=None, population_size=20, tournament_size=3,
                 mutation_rate=0.1, elitism=2):
        super().__init__(seed=seed)
        self.population_size = population_size
        self.tournament_size = tournament_size
        self.mutation_rate = mutation_rate
        self.elitism = elitism

    def _tournament(self, population, rng):
        picks = rng.integers(0, len(population), size=self.tournament_size)
        contenders = [population[int(i)] for i in picks]
        return min(contenders, key=lambda ind: ind[2])

    def _run(self, problem, budget, rng):
        space = problem.space
        population = []  # (digits, index, value) triples
        initial = space.sample_indices(self.population_size, rng=rng,
                                       valid_only=True, unique=True)
        for index in initial.tolist():
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                return
            if not obs.is_failure:
                population.append((space.digits_of_index(index), index, obs.value))
        if not population:
            return
        while not self.budget_exhausted:
            parent_a = self._tournament(population, rng)
            parent_b = self._tournament(population, rng)
            child = np.empty_like(parent_a[0])
            for j in range(child.size):
                child[j] = parent_a[0][j] if rng.random() < 0.5 else parent_b[0][j]
            for j, parameter in enumerate(space.parameters):
                if rng.random() < self.mutation_rate:
                    child[j] = parameter.sample_index(rng)
            index = int(space.digits_to_indices(child[None, :])[0])
            if not index_is_feasible_seed(space, index):
                index = sample_one_index_seed(space, rng)
                child = space.digits_of_index(index)
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                return
            if obs.is_failure:
                continue
            population.sort(key=lambda ind: ind[2])
            protected = population[: self.elitism]
            rest = population[self.elitism:]
            if rest and obs.value < rest[-1][2]:
                rest[-1] = (child, index, obs.value)
            elif len(population) < self.population_size:
                rest.append((child, index, obs.value))
            population = protected + rest


class SeedDifferentialEvolution(Tuner):
    """The pre-batching DE/rand/1/bin: per-trial evaluation and decode scan."""

    name = "diff_evo"

    def __init__(self, seed=None, population_size=20, differential_weight=0.7,
                 crossover_probability=0.8):
        super().__init__(seed=seed)
        self.population_size = population_size
        self.differential_weight = differential_weight
        self.crossover_probability = crossover_probability

    def _run(self, problem, budget, rng):
        space = problem.space
        indices = space.sample_indices(self.population_size, rng=rng,
                                       valid_only=True, unique=True)
        population = encode_indices_seed(space, indices)
        fitness = np.full(indices.size, np.inf)
        for i, index in enumerate(indices.tolist()):
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                return
            fitness[i] = obs.value if not obs.is_failure else np.inf
        n, dims = indices.size, space.dimensions
        while not self.budget_exhausted:
            for target in range(n):
                if self.budget_exhausted:
                    return
                choices = [i for i in range(n) if i != target]
                a, b, c = rng.choice(choices, size=3, replace=False)
                mutant = population[a] + self.differential_weight * (
                    population[b] - population[c])
                cross = rng.random(dims) < self.crossover_probability
                cross[int(rng.integers(0, dims))] = True
                trial_vector = np.where(cross, mutant, population[target])
                trial_index = decode_index_seed(space, trial_vector)
                if not index_is_feasible_seed(space, trial_index):
                    trial_index = sample_one_index_seed(space, rng)
                obs = self.evaluate_index(trial_index, valid_hint=True)
                if obs is None:
                    return
                value = obs.value if not obs.is_failure else np.inf
                if value <= fitness[target]:
                    population[target] = encode_indices_seed(space, [trial_index])[0]
                    fitness[target] = value


class SeedParticleSwarm(Tuner):
    """The pre-batching global-best PSO: two draws and one evaluation per particle."""

    name = "pso"

    def __init__(self, seed=None, swarm_size=16, inertia=0.7, cognitive=1.5,
                 social=1.5):
        super().__init__(seed=seed)
        self.swarm_size = swarm_size
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social

    def _run(self, problem, budget, rng):
        space = problem.space
        indices = space.sample_indices(self.swarm_size, rng=rng, valid_only=True,
                                       unique=True)
        positions = encode_indices_seed(space, indices)
        ranges = np.array([float(np.ptp(numeric_values_seed(p))) or 1.0
                           for p in space.parameters])
        velocities = rng.uniform(-0.1, 0.1, size=positions.shape) * ranges
        personal_best = positions.copy()
        personal_best_value = np.full(indices.size, np.inf)
        global_best = positions[0].copy()
        global_best_value = np.inf
        for i, index in enumerate(indices.tolist()):
            obs = self.evaluate_index(index, valid_hint=True)
            if obs is None:
                return
            value = obs.value if not obs.is_failure else np.inf
            personal_best_value[i] = value
            if value < global_best_value:
                global_best_value = value
                global_best = positions[i].copy()
        while not self.budget_exhausted:
            for i in range(indices.size):
                if self.budget_exhausted:
                    return
                r_cog = rng.random(positions.shape[1])
                r_soc = rng.random(positions.shape[1])
                velocities[i] = (self.inertia * velocities[i]
                                 + self.cognitive * r_cog * (personal_best[i] - positions[i])
                                 + self.social * r_soc * (global_best - positions[i]))
                positions[i] = positions[i] + velocities[i]
                candidate = decode_index_seed(space, positions[i])
                if not index_is_feasible_seed(space, candidate):
                    candidate = sample_one_index_seed(space, rng)
                    positions[i] = encode_indices_seed(space, [candidate])[0]
                obs = self.evaluate_index(candidate, valid_hint=True)
                if obs is None:
                    return
                value = obs.value if not obs.is_failure else np.inf
                if value < personal_best_value[i]:
                    personal_best_value[i] = value
                    personal_best[i] = positions[i].copy()
                if value < global_best_value:
                    global_best_value = value
                    global_best = positions[i].copy()


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_perf.json",
                        help="where to write the timing report")
    args = parser.parse_args()

    benchmarks = all_benchmarks()
    report: dict[str, dict] = {}

    # ------------------------------------------------------ batched unique sampling
    for name in ("dedispersion", "hotspot"):
        space = benchmarks[name].space
        vec, t_vec = timed(space.sample, SAMPLE_N, rng=2023, valid_only=True,
                           unique=True)
        scalar, t_scalar = timed(sample_scalar, space, SAMPLE_N, 2023)
        report[f"sample_10k_{name}"] = {
            "description": f"draw {SAMPLE_N} unique valid configurations of "
                           f"{name} (cardinality {space.cardinality})",
            "scalar_s": round(t_scalar, 4),
            "vectorized_s": round(t_vec, 4),
            "speedup": round(t_scalar / t_vec, 1),
            "identical": vec == scalar,
        }
        print(f"sample 10k {name:>12}: scalar {t_scalar:7.3f}s  "
              f"vectorized {t_vec:7.3f}s  {t_scalar / t_vec:6.1f}x  "
              f"identical={vec == scalar}")

    # ----------------------------------------------- FFG + PageRank on a 2k cache
    cache = benchmarks["hotspot"].build_cache(RTX_3090, sample_size=FFG_CACHE_POINTS,
                                              seed=1)
    graph_vec, t_vec = timed(build_ffg, cache, method="vector")
    graph_scalar, t_scalar = timed(build_ffg, cache, method="scalar")
    identical = (graph_vec.num_nodes == graph_scalar.num_nodes
                 and graph_vec.num_edges == graph_scalar.num_edges
                 and (graph_vec.adjacency != graph_scalar.adjacency).nnz == 0)
    _, t_rank = timed(pagerank, graph_vec.csr_arrays())
    _, t_centrality = timed(proportion_of_centrality, cache, ffg=graph_vec)
    report["build_ffg_2k_hotspot"] = {
        "description": f"fitness-flow graph over a {FFG_CACHE_POINTS}-point hotspot "
                       f"cache ({graph_vec.num_nodes} nodes, "
                       f"{graph_vec.num_edges} edges)",
        "scalar_s": round(t_scalar, 4),
        "vectorized_s": round(t_vec, 4),
        "speedup": round(t_scalar / t_vec, 1),
        "identical": identical,
        "pagerank_s": round(t_rank, 4),
        "centrality_s": round(t_centrality, 4),
    }
    print(f"build_ffg 2k hotspot  : scalar {t_scalar:7.3f}s  "
          f"vectorized {t_vec:7.3f}s  {t_scalar / t_vec:6.1f}x  "
          f"identical={identical}")

    # ------------------------------------------------- exact constrained counting
    gemm_space = benchmarks["gemm"].space
    count_vec, t_vec = timed(gemm_space.count_constrained, limit=None)
    count_scalar, t_scalar = timed(count_constrained_scalar, gemm_space)
    report["count_constrained_gemm"] = {
        "description": f"exact constrained count of GEMM "
                       f"(cardinality {gemm_space.cardinality}, Table VIII)",
        "scalar_s": round(t_scalar, 4),
        "vectorized_s": round(t_vec, 4),
        "speedup": round(t_scalar / t_vec, 1),
        "identical": count_vec == count_scalar,
        "count": count_vec,
    }
    print(f"count_constrained gemm: scalar {t_scalar:7.3f}s  "
          f"vectorized {t_vec:7.3f}s  {t_scalar / t_vec:6.1f}x  "
          f"identical={count_vec == count_scalar} (count={count_vec})")

    # ---------------------------------------------- value-column tiled sweeps
    # Feasibility sweep over a contiguous index range: digit codec + per-element
    # value gather (the PR 1 path) vs tiled value columns that never build a digit
    # matrix (only possible because every kernel constraint is vectorized).
    for name in ("gemm", "hotspot"):
        space = benchmarks[name].space
        stop = min(space.cardinality, 4_000_000)
        chunk = 1 << 17

        def sweep_gather(space=space, stop=stop):
            return [space.satisfied_mask(
                None, digits=space._digits_for_range(s, min(s + chunk, stop)))
                for s in range(0, stop, chunk)]

        def sweep_tiled(space=space, stop=stop):
            return [space._feasible_mask_range(s, min(s + chunk, stop))
                    for s in range(0, stop, chunk)]

        tiled, t_tiled = timed(sweep_tiled)
        gathered, t_gather = timed(sweep_gather)
        identical = all(np.array_equal(a, b) for a, b in zip(tiled, gathered))
        report[f"feasible_sweep_{name}"] = {
            "description": f"constraint mask over the first {stop} indices of "
                           f"{name}: digit-gather columns vs tiled value columns",
            "scalar_s": round(t_gather, 4),
            "vectorized_s": round(t_tiled, 4),
            "speedup": round(t_gather / t_tiled, 1),
            "identical": identical,
        }
        print(f"feasible_sweep {name:>8}: gather {t_gather:7.3f}s  "
              f"tiled {t_tiled:7.3f}s  {t_gather / t_tiled:6.1f}x  "
              f"identical={identical}")

    # ------------------------------------------------- index-native tuner runtime
    # The paper-style tuner campaign: LocalSearch + GreedyILS, 50 seeded runs each,
    # replayed against a sampled hotspot cache.  The baseline re-creates the seed's
    # dictionary loop (scalar restart rejection, per-candidate neighbour dicts with
    # scalar constraint dispatch, config-key hashing everywhere); the fast path is
    # the in-repo index-native runtime.  Same seeds, same random streams -- the
    # merged trajectories must serialize to identical JSON.
    cache = benchmarks["hotspot"].build_cache(
        RTX_3090, sample_size=TUNER_CAMPAIGN_CACHE_POINTS, seed=1)
    cache.index_table()  # build outside the timed region, like the dict store

    def tuner_campaign(factories, runs=TUNER_CAMPAIGN_RUNS):
        results = []
        for factory in factories:
            for seed in range(runs):
                problem = cache.to_problem(strict=False)
                results.append(factory().tune(
                    problem, Budget(max_evaluations=TUNER_CAMPAIGN_BUDGET),
                    seed=seed))
        return results

    def timed_best(fn, *args, repeats=3):
        """Best-of-N timing: the campaign is deterministic, so the minimum is the
        measurement least polluted by scheduler noise / GC on shared hosts."""
        best_result, best_time = None, math.inf
        for _ in range(repeats):
            gc.collect()
            result, elapsed = timed(fn, *args)
            if elapsed < best_time:
                best_result, best_time = result, elapsed
        return best_result, best_time

    # Warm both paths (imports, lazy caches) outside the timed region.
    tuner_campaign([LocalSearch, GreedyILS], runs=2)
    tuner_campaign([SeedLocalSearch, SeedGreedyILS], runs=2)
    index_results, t_index = timed_best(tuner_campaign, [LocalSearch, GreedyILS])
    seed_results, t_seed = timed_best(tuner_campaign,
                                      [SeedLocalSearch, SeedGreedyILS])
    identical = (json.dumps([r.to_dict() for r in index_results])
                 == json.dumps([r.to_dict() for r in seed_results]))
    n_runs = 2 * TUNER_CAMPAIGN_RUNS
    report["tuner_campaign_100runs_hotspot"] = {
        "description": f"{n_runs}-run LocalSearch+GreedyILS convergence campaign "
                       f"({TUNER_CAMPAIGN_BUDGET} evaluations/run) replayed on a "
                       f"{TUNER_CAMPAIGN_CACHE_POINTS}-point hotspot cache: seed "
                       f"dict-path loop vs index-native loop",
        "scalar_s": round(t_seed, 4),
        "vectorized_s": round(t_index, 4),
        "speedup": round(t_seed / t_index, 1),
        "identical": identical,
        "evaluations": sum(len(r) for r in index_results),
    }
    print(f"tuner_campaign hotspot: dict {t_seed:7.3f}s  "
          f"index-native {t_index:7.3f}s  {t_seed / t_index:6.1f}x  "
          f"identical={identical}")

    # ------------------------------------------- generation-batched population tuners
    # GA + DE + PSO replayed against a sampled hotspot cache: the pre-batching
    # per-candidate loops (one evaluate_index/budget charge/result record per
    # candidate, per-gene crossover draws, per-parameter decode scans, bisection
    # membership per repair attempt) vs the generation-batched runtime (peeked
    # candidates, one bulk-accounted run per generation, sized operator draws,
    # grid decode, bitmap membership).  The feasible set is pre-built outside the
    # timed region (`force=True`; hotspot sits above the memoize threshold) so
    # both paths draw repairs from the same memo and the entry isolates the
    # inner loops.  Same seeds, same random streams -- the merged trajectories
    # must serialize identically.
    population_cache = benchmarks["hotspot"].build_cache(
        RTX_3090, sample_size=POPULATION_CAMPAIGN_CACHE_POINTS, seed=1)
    population_cache.index_table()
    population_cache.space.feasible_indices(force=True)

    def population_campaign(factories, runs=POPULATION_CAMPAIGN_RUNS):
        results = []
        for factory in factories:
            for seed in range(runs):
                problem = population_cache.to_problem(strict=False)
                results.append(factory().tune(
                    problem, Budget(max_evaluations=POPULATION_CAMPAIGN_BUDGET),
                    seed=seed))
        return results

    batched_factories = [GeneticAlgorithm, DifferentialEvolution, ParticleSwarm]
    seed_factories = [SeedGeneticAlgorithm, SeedDifferentialEvolution,
                      SeedParticleSwarm]
    population_campaign(batched_factories, runs=2)   # warm both paths
    population_campaign(seed_factories, runs=2)
    batched_results, t_batched = timed_best(population_campaign, batched_factories)
    seed_results, t_scalar = timed_best(population_campaign, seed_factories)
    identical = (json.dumps([r.to_dict() for r in batched_results])
                 == json.dumps([r.to_dict() for r in seed_results]))
    n_runs = 3 * POPULATION_CAMPAIGN_RUNS
    report["population_campaign_45runs_hotspot"] = {
        "description": f"{n_runs}-run GA+DE+PSO campaign "
                       f"({POPULATION_CAMPAIGN_BUDGET} evaluations/run) replayed "
                       f"on a {POPULATION_CAMPAIGN_CACHE_POINTS}-point hotspot "
                       f"cache with a pre-built feasible memo: per-candidate "
                       f"scalar loops vs generation-batched runtime",
        "scalar_s": round(t_scalar, 4),
        "vectorized_s": round(t_batched, 4),
        "speedup": round(t_scalar / t_batched, 1),
        "identical": identical,
        "evaluations": sum(len(r) for r in batched_results),
    }
    print(f"population_campaign hotspot: scalar {t_scalar:7.3f}s  "
          f"generation-batched {t_batched:7.3f}s  {t_scalar / t_batched:6.1f}x  "
          f"identical={identical}")
    # The forced memo was a campaign-local knob; drop it so the sharded-campaign
    # entry below times the hotspot space in its default (streaming) state.
    population_cache.space.release_feasible_memo()

    # ------------------------------------------------ columnar cache replay open
    # Opening a finished campaign cache for replay: JSON loading rehydrates every
    # observation into dictionaries up front; the columnar open reads the header,
    # verifies the column checksums, and builds the index table straight off the
    # memory-mapped columns.  Both opens then serve the same index-table probes,
    # and both loads must serialize to identical JSON (value-exactness).
    with tempfile.TemporaryDirectory() as replay_dir:
        replay_cache = benchmarks["hotspot"].build_cache(
            RTX_3090, sample_size=REPLAY_CACHE_POINTS, seed=1)
        json_path = save_cache(replay_cache, Path(replay_dir) / "replay.json")
        col_path = replay_cache.to_columnar(Path(replay_dir) / "replay.col")
        space = replay_cache.space
        probe = space.sample_indices(2048, rng=7, valid_only=True, unique=True)

        def open_json():
            cache = load_cache(json_path, space=space)
            return cache.index_table().lookup(probe)

        def open_columnar():
            cache = EvaluationCache.from_columnar(col_path, space=space)
            return cache.index_table().lookup(probe)

        open_json(), open_columnar()  # warm the page cache for both files
        json_probe, t_json = timed_best(open_json)
        col_probe, t_col = timed_best(open_columnar)
        identical = (
            all(np.array_equal(a, b) for a, b in zip(json_probe, col_probe))
            and json.dumps(load_cache(json_path, space=space).to_dict())
            == json.dumps(EvaluationCache.from_columnar(col_path,
                                                        space=space).to_dict()))
        report["cache_replay_open"] = {
            "description": f"open a {REPLAY_CACHE_POINTS}-row hotspot campaign "
                           f"cache for index-table replay: JSON load vs "
                           f"columnar mmap open (checksummed)",
            "scalar_s": round(t_json, 4),
            "vectorized_s": round(t_col, 4),
            "speedup": round(t_json / t_col, 1),
            "identical": identical,
        }
        print(f"cache_replay_open     : json {t_json:7.3f}s  "
              f"columnar-mmap {t_col:7.3f}s  {t_json / t_col:6.1f}x  "
              f"identical={identical}")

    # ------------------------------------------- sharded 10k-sample campaign
    # The paper's sampled campaign: hotspot/dedispersion/expdist, 10 000 unique
    # configurations each, on all four GPUs -- serial reference executor vs the
    # process-pool executor, merged caches byte-identical by contract.  Wall-clock
    # speedup is bounded by the cores the machine actually has, so the core count
    # is part of the record.
    gpus = all_gpus()
    sampled = {name: benchmarks[name]
               for name in ("hotspot", "dedispersion", "expdist")}
    planner = ShardPlanner(sampled, gpus, sample_size=SAMPLE_N, seed=2023)
    plan = planner.plan()
    serial_caches, t_serial = timed(
        SerialExecutor().run, plan, benchmarks=sampled, gpus=gpus)
    parallel_caches, t_parallel = timed(
        ParallelExecutor(workers=CAMPAIGN_WORKERS).run, plan,
        benchmarks=sampled, gpus=gpus)
    identical = all(
        json.dumps(serial_caches[key].to_dict())
        == json.dumps(parallel_caches[key].to_dict())
        for key in serial_caches)
    cpu_count = os.cpu_count() or 1
    report[f"parallel_campaign_10k_{CAMPAIGN_WORKERS}workers"] = {
        "description": f"paper 10k-sample campaign ({len(plan.units)} units, "
                       f"{plan.n_configs} evaluations in {len(plan.shards)} "
                       f"shards): SerialExecutor vs ParallelExecutor"
                       f"({CAMPAIGN_WORKERS} workers)",
        "serial_s": round(t_serial, 4),
        "parallel_s": round(t_parallel, 4),
        "speedup": round(t_serial / t_parallel, 2),
        "identical": identical,
        "cpu_count": cpu_count,
        "speedup_bound": min(CAMPAIGN_WORKERS, cpu_count),
    }
    print(f"campaign 10k x{len(plan.units):>2}  : serial {t_serial:7.3f}s  "
          f"parallel({CAMPAIGN_WORKERS}w) {t_parallel:7.3f}s  "
          f"{t_serial / t_parallel:6.2f}x  identical={identical}  "
          f"(host has {cpu_count} core(s))")
    if cpu_count < 2:
        print("  note: single-core host -- wall-clock speedup is bounded at 1x "
              "here; the >=2x criterion is checked on multi-core hosts")

    out_path = Path(args.output)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    mismatched = [k for k, v in report.items() if not v["identical"]]
    if mismatched:
        raise SystemExit(f"result mismatch between scalar and vectorized paths: "
                         f"{mismatched}")
    campaign = report[f"parallel_campaign_10k_{CAMPAIGN_WORKERS}workers"]
    # Only gate where the 2x bar sits comfortably below the theoretical ceiling:
    # on 2-3 (possibly hyperthreaded) cores the bound itself is ~2x and pool
    # overhead legitimately lands just under it.
    if campaign["cpu_count"] >= 4 and campaign["speedup"] < 2.0:
        raise SystemExit(
            f"parallel campaign speedup {campaign['speedup']}x is below the 2x "
            f"bar on a {campaign['cpu_count']}-core host")
    replay = report["cache_replay_open"]
    if replay["speedup"] < 5.0:
        raise SystemExit(
            f"columnar replay open speedup {replay['speedup']}x is below the "
            f"5x bar against JSON loading")


if __name__ == "__main__":
    main()
