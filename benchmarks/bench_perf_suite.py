"""Micro-benchmark harness for the vectorized search-space engine.

Times the hot paths the engine rewired -- batched unique sampling, fitness-flow graph
construction, exact constrained counting, and sharded campaign execution -- against
faithful re-creations of the seed repository's scalar implementations (or the serial
reference executor), asserts that both produce identical results, and writes the
timings to ``BENCH_perf.json`` so before/after comparisons survive the run.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_suite.py [--output BENCH_perf.json]

or via ``scripts/run_perf.sh``.
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.searchspace import SearchSpace
from repro.exec import ParallelExecutor, SerialExecutor, ShardPlanner
from repro.gpus.specs import RTX_3090, all_gpus
from repro.graph.centrality import proportion_of_centrality
from repro.graph.ffg import build_ffg
from repro.graph.pagerank import pagerank
from repro.kernels import all_benchmarks

SAMPLE_N = 10_000
FFG_CACHE_POINTS = 2_000
CAMPAIGN_WORKERS = 4


# ----------------------------------------------------------- scalar reference paths
#
# These reproduce the seed implementation's per-config Python loops so the "before"
# timings stay measurable after the scalar code paths were replaced.


def sample_scalar(space: SearchSpace, n: int, seed: int) -> list[dict]:
    """The seed's one-index-at-a-time rejection sampling (unique, valid)."""
    rng = np.random.default_rng(seed)
    out: list[dict] = []
    seen: set[int] = set()
    while len(out) < n:
        idx = int(rng.integers(0, space.cardinality))
        if idx in seen:
            continue
        config = space.config_at(idx)
        if not space.constraints.is_satisfied(config):
            continue
        seen.add(idx)
        out.append(config)
    return out


def count_constrained_scalar(space: SearchSpace) -> int:
    """The seed's exact count: full itertools enumeration, one eval per config."""
    names = space.parameter_names
    value_lists = [p.values for p in space.parameters]
    constraints = space.constraints
    return sum(1 for combo in itertools.product(*value_lists)
               if constraints.is_satisfied(dict(zip(names, combo))))


def timed(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_perf.json",
                        help="where to write the timing report")
    args = parser.parse_args()

    benchmarks = all_benchmarks()
    report: dict[str, dict] = {}

    # ------------------------------------------------------ batched unique sampling
    for name in ("dedispersion", "hotspot"):
        space = benchmarks[name].space
        vec, t_vec = timed(space.sample, SAMPLE_N, rng=2023, valid_only=True,
                           unique=True)
        scalar, t_scalar = timed(sample_scalar, space, SAMPLE_N, 2023)
        report[f"sample_10k_{name}"] = {
            "description": f"draw {SAMPLE_N} unique valid configurations of "
                           f"{name} (cardinality {space.cardinality})",
            "scalar_s": round(t_scalar, 4),
            "vectorized_s": round(t_vec, 4),
            "speedup": round(t_scalar / t_vec, 1),
            "identical": vec == scalar,
        }
        print(f"sample 10k {name:>12}: scalar {t_scalar:7.3f}s  "
              f"vectorized {t_vec:7.3f}s  {t_scalar / t_vec:6.1f}x  "
              f"identical={vec == scalar}")

    # ----------------------------------------------- FFG + PageRank on a 2k cache
    cache = benchmarks["hotspot"].build_cache(RTX_3090, sample_size=FFG_CACHE_POINTS,
                                              seed=1)
    graph_vec, t_vec = timed(build_ffg, cache, method="vector")
    graph_scalar, t_scalar = timed(build_ffg, cache, method="scalar")
    identical = (graph_vec.num_nodes == graph_scalar.num_nodes
                 and graph_vec.num_edges == graph_scalar.num_edges
                 and (graph_vec.adjacency != graph_scalar.adjacency).nnz == 0)
    _, t_rank = timed(pagerank, graph_vec.csr_arrays())
    _, t_centrality = timed(proportion_of_centrality, cache, ffg=graph_vec)
    report["build_ffg_2k_hotspot"] = {
        "description": f"fitness-flow graph over a {FFG_CACHE_POINTS}-point hotspot "
                       f"cache ({graph_vec.num_nodes} nodes, "
                       f"{graph_vec.num_edges} edges)",
        "scalar_s": round(t_scalar, 4),
        "vectorized_s": round(t_vec, 4),
        "speedup": round(t_scalar / t_vec, 1),
        "identical": identical,
        "pagerank_s": round(t_rank, 4),
        "centrality_s": round(t_centrality, 4),
    }
    print(f"build_ffg 2k hotspot  : scalar {t_scalar:7.3f}s  "
          f"vectorized {t_vec:7.3f}s  {t_scalar / t_vec:6.1f}x  "
          f"identical={identical}")

    # ------------------------------------------------- exact constrained counting
    gemm_space = benchmarks["gemm"].space
    count_vec, t_vec = timed(gemm_space.count_constrained, limit=None)
    count_scalar, t_scalar = timed(count_constrained_scalar, gemm_space)
    report["count_constrained_gemm"] = {
        "description": f"exact constrained count of GEMM "
                       f"(cardinality {gemm_space.cardinality}, Table VIII)",
        "scalar_s": round(t_scalar, 4),
        "vectorized_s": round(t_vec, 4),
        "speedup": round(t_scalar / t_vec, 1),
        "identical": count_vec == count_scalar,
        "count": count_vec,
    }
    print(f"count_constrained gemm: scalar {t_scalar:7.3f}s  "
          f"vectorized {t_vec:7.3f}s  {t_scalar / t_vec:6.1f}x  "
          f"identical={count_vec == count_scalar} (count={count_vec})")

    # ------------------------------------------- sharded 10k-sample campaign
    # The paper's sampled campaign: hotspot/dedispersion/expdist, 10 000 unique
    # configurations each, on all four GPUs -- serial reference executor vs the
    # process-pool executor, merged caches byte-identical by contract.  Wall-clock
    # speedup is bounded by the cores the machine actually has, so the core count
    # is part of the record.
    gpus = all_gpus()
    sampled = {name: benchmarks[name]
               for name in ("hotspot", "dedispersion", "expdist")}
    planner = ShardPlanner(sampled, gpus, sample_size=SAMPLE_N, seed=2023)
    plan = planner.plan()
    serial_caches, t_serial = timed(
        SerialExecutor().run, plan, benchmarks=sampled, gpus=gpus)
    parallel_caches, t_parallel = timed(
        ParallelExecutor(workers=CAMPAIGN_WORKERS).run, plan,
        benchmarks=sampled, gpus=gpus)
    identical = all(
        json.dumps(serial_caches[key].to_dict())
        == json.dumps(parallel_caches[key].to_dict())
        for key in serial_caches)
    cpu_count = os.cpu_count() or 1
    report[f"parallel_campaign_10k_{CAMPAIGN_WORKERS}workers"] = {
        "description": f"paper 10k-sample campaign ({len(plan.units)} units, "
                       f"{plan.n_configs} evaluations in {len(plan.shards)} "
                       f"shards): SerialExecutor vs ParallelExecutor"
                       f"({CAMPAIGN_WORKERS} workers)",
        "serial_s": round(t_serial, 4),
        "parallel_s": round(t_parallel, 4),
        "speedup": round(t_serial / t_parallel, 2),
        "identical": identical,
        "cpu_count": cpu_count,
        "speedup_bound": min(CAMPAIGN_WORKERS, cpu_count),
    }
    print(f"campaign 10k x{len(plan.units):>2}  : serial {t_serial:7.3f}s  "
          f"parallel({CAMPAIGN_WORKERS}w) {t_parallel:7.3f}s  "
          f"{t_serial / t_parallel:6.2f}x  identical={identical}  "
          f"(host has {cpu_count} core(s))")
    if cpu_count < 2:
        print("  note: single-core host -- wall-clock speedup is bounded at 1x "
              "here; the >=2x criterion is checked on multi-core hosts")

    out_path = Path(args.output)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out_path}")

    mismatched = [k for k, v in report.items() if not v["identical"]]
    if mismatched:
        raise SystemExit(f"result mismatch between scalar and vectorized paths: "
                         f"{mismatched}")
    campaign = report[f"parallel_campaign_10k_{CAMPAIGN_WORKERS}workers"]
    # Only gate where the 2x bar sits comfortably below the theoretical ceiling:
    # on 2-3 (possibly hyperthreaded) cores the bound itself is ~2x and pool
    # overhead legitimately lands just under it.
    if campaign["cpu_count"] >= 4 and campaign["speedup"] < 2.0:
        raise SystemExit(
            f"parallel campaign speedup {campaign['speedup']}x is below the 2x "
            f"bar on a {campaign['cpu_count']}-core host")


if __name__ == "__main__":
    main()
