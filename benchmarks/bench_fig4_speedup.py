"""Fig. 4: max speedup over the median configuration.

Regenerates the bar chart data of Fig. 4 (one bar per benchmark and GPU) and checks the
paper's headline observations: most benchmarks offer a 1.2-4x gain over the median
configuration while Hotspot is the outlier with an order-of-magnitude gain.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import report
from repro.analysis.speedup import speedup_study

from conftest import write_result


def test_fig4_max_speedup_over_median(benchmark, caches):
    """Max speedup over the median configuration for every benchmark and GPU."""

    def build():
        return speedup_study(caches)

    entries = benchmark.pedantic(build, rounds=1, iterations=1)
    text = report.format_speedups(entries)
    write_result("fig4_speedup_over_median.txt", text)

    assert len(entries) == len(caches)
    by_benchmark: dict[str, list[float]] = {}
    for entry in entries:
        assert entry.speedup >= 1.0
        by_benchmark.setdefault(entry.benchmark, []).append(entry.speedup)

    hotspot = float(np.mean(by_benchmark["hotspot"]))
    others = max(float(np.mean(v)) for k, v in by_benchmark.items() if k != "hotspot")
    # Hotspot is the clear outlier (paper: 11-12x vs 1.5-3.06x for the rest).
    assert hotspot > 4.0
    assert hotspot > 1.5 * others
    for name, values in by_benchmark.items():
        if name != "hotspot":
            assert max(values) < 4.5, name
