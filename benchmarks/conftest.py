"""Shared fixtures of the benchmark harness.

The harness regenerates every table and figure of the paper's evaluation section from
the simulated campaigns.  Campaign size is controlled by the ``REPRO_BENCH_SAMPLES``
environment variable:

* default (2 500 samples for the three huge spaces, exhaustive for the rest) -- a
  faithful but fast regeneration, a few minutes end to end;
* ``REPRO_BENCH_SAMPLES=10000`` -- the paper's exact experimental design (Sec. V).

Rendered tables are written to ``results/`` next to the repository root so the numbers
survive the pytest run, and returned by each benchmark for inspection.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.analysis.campaign import Campaign
from repro.analysis.importance import importance_study
from repro.gpus import all_gpus
from repro.kernels import all_benchmarks

#: Where the regenerated tables/figures are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def _sample_size() -> int:
    return int(os.environ.get("REPRO_BENCH_SAMPLES", "2500"))


@pytest.fixture(scope="session")
def benchmarks():
    """The full benchmark suite at paper-scale workloads."""
    return all_benchmarks()


@pytest.fixture(scope="session")
def gpus():
    """The paper's four GPUs."""
    return all_gpus()


@pytest.fixture(scope="session")
def campaign(benchmarks, gpus):
    """The measurement campaign shared by every figure/table benchmark."""
    return Campaign(benchmarks, gpus, sample_size=_sample_size(), seed=2023)


@pytest.fixture(scope="session")
def caches(campaign):
    """All (benchmark, GPU) campaign caches, built once per session."""
    return campaign.all_caches()


@pytest.fixture(scope="session")
def importance_reports(caches):
    """Fig. 6 feature-importance reports, shared with the Table VIII benchmark."""
    return importance_study(caches, n_estimators=150, max_depth=5, learning_rate=0.1,
                            n_repeats=2, max_samples=6000)


def write_result(name: str, text: str) -> Path:
    """Persist one rendered figure/table under ``results/`` and return the path."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n", encoding="utf-8")
    return path
