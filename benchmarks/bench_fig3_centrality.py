"""Fig. 3: proportion-of-centrality search difficulty for GEMM, Convolution and Pnpoly.

Builds the fitness-flow graph of each exhaustive campaign, computes PageRank and the
proportion-of-centrality metric (Schoonhoven et al.), and checks the paper's reading of
the figure: local search is expected to fare better on Convolution than on GEMM and
Pnpoly (higher centrality proportion at tight bands).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import report
from repro.analysis.centrality_report import centrality_study

from conftest import write_result

PROPORTIONS = (0.01, 0.02, 0.05, 0.10, 0.20, 0.50)


def test_fig3_proportion_of_centrality(benchmark, caches):
    """Proportion of centrality for the three exhaustively-searched small benchmarks."""

    def build():
        return centrality_study(caches, benchmark_names=("gemm", "convolution", "pnpoly"),
                                proportions=PROPORTIONS)

    reports = benchmark.pedantic(build, rounds=1, iterations=1)
    text = report.format_centrality(reports)
    write_result("fig3_centrality.txt", text)

    assert len(reports) == 12  # 3 benchmarks x 4 GPUs
    for rep in reports.values():
        values = np.asarray(rep.values)
        assert np.all(np.diff(values) >= -1e-12)  # monotone in the proportion band
        assert 0.0 <= values[0] <= values[-1] <= 1.0
        assert rep.num_minima >= 1

    def mean_at(benchmark_name: str, proportion: float) -> float:
        return float(np.mean([rep.value_at(proportion)
                              for (bench, _), rep in reports.items()
                              if bench == benchmark_name]))

    # Convolution's landscape funnels local search towards good minima more than
    # GEMM's does (the paper's conclusion from Fig. 3).
    assert mean_at("convolution", 0.10) > mean_at("gemm", 0.10)
