"""Fig. 6 and Sec. VI-F: permutation feature importance of the tuning parameters.

Trains the GBDT regression model (the CatBoost substitute) on every campaign, reports
the model quality (R^2) and the permutation feature importance of every parameter, and
checks the paper's observations: the models predict configuration performance very
accurately, only a few parameters carry most of the importance for GEMM and Nbody, the
importance ranking is consistent across GPUs, and the importance sums exceed 1 --
evidence of parameter interactions and hence of the need for global optimization
(Sec. VI-H).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import report

from conftest import write_result


def test_fig6_permutation_feature_importance(benchmark, importance_reports):
    """Fit quality and PFI for every benchmark and GPU."""

    reports = benchmark.pedantic(lambda: importance_reports, rounds=1, iterations=1)
    text = report.format_importance(reports)
    write_result("fig6_feature_importance.txt", text)

    assert len(reports) == 28  # 7 benchmarks x 4 GPUs

    # Model quality: the regression models explain configuration performance well.
    r2_by_benchmark: dict[str, list[float]] = {}
    for (bench, _), rep in reports.items():
        r2_by_benchmark.setdefault(bench, []).append(rep.r2)
    for bench, values in r2_by_benchmark.items():
        assert min(values) > 0.85, (bench, values)

    # Only a few parameters matter for GEMM and Nbody (Fig. 6a / 6b): the top-3
    # parameters carry most of the total importance.
    for bench in ("gemm", "nbody"):
        for (b, gpu), rep in reports.items():
            if b != bench:
                continue
            ranked = [v for _, v in rep.ranked()]
            top3 = sum(ranked[:3])
            assert top3 > 0.6 * sum(max(v, 0.0) for v in ranked), (bench, gpu)

    # Importance rankings are consistent across GPUs: the most important parameter on
    # one GPU is within the top three on every other GPU.
    for bench in r2_by_benchmark:
        tops = []
        for (b, gpu), rep in reports.items():
            if b == bench:
                tops.append([name for name, _ in rep.ranked()[:3]])
        leaders = {t[0] for t in tops}
        for leader in leaders:
            assert all(leader in t for t in tops), (bench, leaders, tops)

    # Interactions: for most campaigns the PFI sum exceeds 1 (Sec. VI-H).
    totals = [rep.total_importance for rep in reports.values()]
    assert np.mean([t > 1.0 for t in totals]) > 0.5
