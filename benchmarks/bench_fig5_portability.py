"""Fig. 5: performance portability of optimal configurations across GPUs.

Regenerates the transfer matrices of the exhaustively-searched benchmarks
(Convolution, Pnpoly, Nbody): for each pair of GPUs, how much of the target GPU's
achievable performance is retained when simply reusing the configuration tuned on the
source GPU.  Checks the paper's conclusions: transfers within an architecture family
(RTX 3060 <-> RTX 3090, RTX 2080 Ti <-> RTX Titan) retain most of the performance,
while the worst cross-family transfers lose tens of percent.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import report
from repro.analysis.portability import portability_study

from conftest import write_result

FAMILIES = {
    "RTX_2080_Ti": "Turing",
    "RTX_Titan": "Turing",
    "RTX_3060": "Ampere",
    "RTX_3090": "Ampere",
}


def test_fig5_performance_portability(benchmark, benchmarks, caches, gpus):
    """Portability matrices for Convolution, Pnpoly and Nbody."""

    def build():
        return portability_study(benchmarks, caches, gpus,
                                 benchmark_names=("convolution", "pnpoly", "nbody"))

    matrices = benchmark.pedantic(build, rounds=1, iterations=1)
    text = report.format_portability(matrices)
    write_result("fig5_portability.txt", text)

    assert set(matrices) == {"convolution", "pnpoly", "nbody"}

    same_family, cross_family = [], []
    for matrix in matrices.values():
        rp = matrix.relative_performance
        np.testing.assert_allclose(np.diag(rp), 1.0)
        # A transferred configuration that cannot even launch on the target device
        # (e.g. an Ampere-tuned shared-memory tile on a Turing card) scores 0.
        assert np.all(rp >= 0.0) and np.all(rp <= 1.0 + 1e-9)
        for i, src in enumerate(matrix.gpus):
            for j, dst in enumerate(matrix.gpus):
                if i == j:
                    continue
                if FAMILIES[src] == FAMILIES[dst]:
                    same_family.append(rp[i, j])
                else:
                    cross_family.append(rp[i, j])

    # Same-family transfers retain more performance than cross-family transfers, and
    # the worst cross-family transfer loses a substantial fraction (paper: down to
    # 58.5% of the target's optimum).
    assert np.mean(same_family) > np.mean(cross_family)
    assert min(cross_family) < 0.90
    assert np.mean(same_family) > 0.85
