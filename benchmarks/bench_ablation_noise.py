"""Ablation: effect of the measurement-noise model on the analysis results.

DESIGN.md calls out the deterministic noise model as a design choice of the simulated
substrate.  This ablation rebuilds one campaign with the noise disabled and checks that
the headline quantities (optimum, median, max/median speedup, importance ranking) are
stable -- i.e. the reproduction's conclusions do not hinge on the injected noise.
"""

from __future__ import annotations


from repro.analysis import report
from repro.analysis.campaign import Campaign
from repro.analysis.importance import feature_importance

from conftest import write_result


def test_ablation_noise_sensitivity(benchmark, benchmarks, gpus):
    """Pnpoly campaign on the RTX 3090 with and without measurement noise."""

    def build():
        rows = {}
        for label, with_noise in (("with_noise", True), ("without_noise", False)):
            campaign = Campaign({"pnpoly": benchmarks["pnpoly"]},
                                {"RTX_3090": gpus["RTX_3090"]},
                                with_noise=with_noise, seed=2023)
            cache = campaign.cache("pnpoly", "RTX_3090")
            importance = feature_importance(cache, n_estimators=100, max_depth=5,
                                            n_repeats=2)
            rows[label] = {
                "optimum": cache.optimum(),
                "median": cache.median(),
                "speedup": cache.median() / cache.optimum(),
                "top_parameter": importance.ranked()[0][0],
                "r2": importance.r2,
            }
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = report.format_table(
        ("Variant", "Optimum[ms]", "Median[ms]", "Speedup", "Top parameter", "R^2"),
        [(k, f"{v['optimum']:.3f}", f"{v['median']:.3f}", f"{v['speedup']:.2f}x",
          v["top_parameter"], f"{v['r2']:.4f}") for k, v in rows.items()],
        title="Ablation - measurement-noise sensitivity (pnpoly, RTX 3090)")
    write_result("ablation_noise.txt", text)

    noisy, clean = rows["with_noise"], rows["without_noise"]
    assert abs(noisy["optimum"] - clean["optimum"]) / clean["optimum"] < 0.05
    assert abs(noisy["speedup"] - clean["speedup"]) / clean["speedup"] < 0.10
    assert noisy["top_parameter"] == clean["top_parameter"]
    # Without noise the regression model fits the analytical model essentially exactly.
    assert clean["r2"] >= noisy["r2"] - 1e-6
