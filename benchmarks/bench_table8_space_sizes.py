"""Table VIII: search-space sizes (Cardinality / Constrained / Valid / Reduced / Reduce-Constrained).

Regenerates the reproduction's Table VIII from the parameter tables, the reconstructed
constraints, per-GPU launch validity and the feature-importance threshold of 0.05, and
compares the raw cardinalities against the paper's values (which must match exactly,
since they follow from Tables I--VII).
"""

from __future__ import annotations

from repro.analysis import report
from repro.analysis.spacesize import PAPER_TABLE8, space_size_table

from conftest import write_result


def test_table8_search_space_sizes(benchmark, benchmarks, gpus, importance_reports, caches):
    """The reproduced Table VIII, side by side with the paper's values."""

    def build():
        return space_size_table(benchmarks, gpus, importance_reports, caches=caches,
                                importance_threshold=0.05, enumeration_limit=200_000,
                                constrained_sample=100_000)

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = report.format_space_sizes(rows, include_paper=True)
    write_result("table8_space_sizes.txt", text)

    by_name = {row.benchmark: row for row in rows}
    assert set(by_name) == set(PAPER_TABLE8)

    for name, row in by_name.items():
        # Cardinalities are definitional and must match the paper exactly.
        assert row.cardinality == PAPER_TABLE8[name]["cardinality"], name
        # Constrained and reduced spaces never exceed the raw product.
        assert row.constrained <= row.cardinality
        assert row.reduced <= row.cardinality
        assert row.reduce_constrained <= row.reduced

    # GEMM's CLBlast constraints reproduce the paper's constrained count exactly.
    assert by_name["gemm"].constrained == PAPER_TABLE8["gemm"]["constrained"]
    # Pnpoly has no constraints at all.
    assert by_name["pnpoly"].constrained == by_name["pnpoly"].cardinality
    # The huge spaces report no exhaustive per-GPU validity, like the paper's "N/A".
    for name in ("hotspot", "dedispersion", "expdist"):
        assert by_name[name].valid_range is None
    # The importance-based reduction shrinks at least the biggest spaces.
    assert by_name["hotspot"].reduced < by_name["hotspot"].cardinality
    assert by_name["dedispersion"].reduced < by_name["dedispersion"].cardinality
