"""Fig. 2: convergence towards the optimum under random search.

Regenerates the median-of-repetitions random-search convergence curves for every
benchmark and GPU (the paper uses 100 repetitions over the campaign caches) and checks
the ordering the paper reads off the figure: Expdist and Nbody reach 90% of optimal
within tens of evaluations while Convolution and GEMM need an order of magnitude more.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import report
from repro.analysis.convergence import random_search_convergence

from conftest import write_result


def test_fig2_random_search_convergence(benchmark, caches):
    """Median random-search convergence, 100 repetitions per (benchmark, GPU)."""

    def build():
        return [random_search_convergence(cache, repetitions=100, budget=1000, seed=42)
                for cache in caches.values()]

    curves = benchmark.pedantic(build, rounds=1, iterations=1)
    text = report.format_convergence(curves)
    write_result("fig2_convergence.txt", text)

    assert len(curves) == len(caches)
    for curve in curves:
        # Monotone non-decreasing median trajectory that ends above 80% of optimal.
        assert np.all(np.diff(curve.median_relative_performance) >= -1e-12)
        assert curve.median_relative_performance[-1] > 0.8

    def mean_evals_to_90(benchmark_name: str) -> float:
        values = []
        for curve in curves:
            if curve.benchmark == benchmark_name:
                needed = curve.evaluations_to_reach(0.9)
                values.append(float(needed) if needed is not None else float(curve.budget))
        return float(np.mean(values))

    # The paper's ordering: the easy benchmarks (Expdist, Nbody) converge at least an
    # order of magnitude faster than the hard ones (Convolution, GEMM).
    easy = max(mean_evals_to_90("expdist"), mean_evals_to_90("nbody"))
    hard = min(mean_evals_to_90("convolution"), mean_evals_to_90("gemm"))
    assert easy < hard
