"""Fig. 1: performance distribution of configurations for every benchmark and GPU.

Regenerates the distribution summaries (histogram, percentiles, max/median speedup,
near-optimal cluster size) that underlie the paper's Fig. 1 panels, and checks the
paper's two qualitative observations: distribution shapes are benchmark-specific but
consistent across GPUs, and Hotspot exhibits a distinct cluster of very highly
performing configurations.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import report
from repro.analysis.distribution import distribution_summary

from conftest import write_result


def test_fig1_distributions(benchmark, caches):
    """Distribution summaries for all 7 benchmarks x 4 GPUs."""

    def build():
        return [distribution_summary(cache) for cache in caches.values()]

    summaries = benchmark.pedantic(build, rounds=1, iterations=1)
    text = report.format_distribution(summaries)
    write_result("fig1_distribution.txt", text)

    assert len(summaries) == len(caches)

    # Shapes are similar across GPUs for the same benchmark: the skewness of the
    # relative-performance distribution varies less within a benchmark than across
    # benchmarks.
    by_benchmark: dict[str, list[float]] = {}
    for s in summaries:
        by_benchmark.setdefault(s.benchmark, []).append(s.skewness)
    within = np.mean([np.std(v) for v in by_benchmark.values()])
    across = np.std([np.mean(v) for v in by_benchmark.values()])
    assert within < across

    # Hotspot's cluster of configurations with >4x speedup over the median (the
    # paper's ">10x" cluster, compressed in the simulated substrate) exists on every
    # GPU and is absent for the other benchmarks.
    for s in summaries:
        rel = s.relative_performance
        fast_cluster = float(np.mean(rel > 4.0))
        if s.benchmark == "hotspot":
            assert fast_cluster > 0.001, (s.benchmark, s.gpu)
        else:
            assert fast_cluster < 0.001, (s.benchmark, s.gpu)
