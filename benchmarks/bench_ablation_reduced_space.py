"""Ablation: tuning on the full space vs the importance-reduced space.

Table VIII's point is that the feature-importance analysis identifies the interesting
part of each search space.  This ablation verifies the claim operationally: random
search restricted to the reduced space (unimportant parameters frozen at the best-known
values) reaches a given quality in no more evaluations than random search on the full
space.
"""

from __future__ import annotations


from repro.analysis import report
from repro.analysis.convergence import random_search_convergence
from repro.analysis.importance import important_parameters
from repro.core.cache import EvaluationCache

from conftest import write_result


def test_ablation_reduced_space_tuning(benchmark, benchmarks, caches, importance_reports):
    """Random-search convergence on the full vs reduced Convolution space (RTX 3090)."""

    bench_name, gpu_name = "convolution", "RTX_3090"
    cache = caches[(bench_name, gpu_name)]
    reports = [rep for (b, _), rep in importance_reports.items() if b == bench_name]

    def build():
        keep = important_parameters(reports, threshold=0.05)
        best_config = cache.best().config
        # Restrict the cached campaign to configurations agreeing with the best
        # configuration on every dropped (unimportant) parameter.
        frozen = {name: best_config[name] for name in cache.space.parameter_names
                  if name not in keep}
        reduced_cache = EvaluationCache(bench_name, gpu_name, cache.space, exhaustive=False)
        for obs in cache.valid_observations():
            if all(obs.config[k] == v for k, v in frozen.items()):
                reduced_cache.add_observation(obs)
        full_curve = random_search_convergence(cache, repetitions=50, budget=300, seed=9)
        reduced_curve = random_search_convergence(reduced_cache, repetitions=50,
                                                  budget=min(300, reduced_cache.num_valid),
                                                  seed=9)
        return keep, full_curve, reduced_curve, len(reduced_cache)

    keep, full_curve, reduced_curve, reduced_size = benchmark.pedantic(
        build, rounds=1, iterations=1)

    def evals_to(curve, threshold):
        needed = curve.evaluations_to_reach(threshold)
        return needed if needed is not None else curve.budget + 1

    text = report.format_table(
        ("Space", "Configs", "evals to 80%", "evals to 90%"),
        [("full", cache.num_valid, evals_to(full_curve, 0.8), evals_to(full_curve, 0.9)),
         (f"reduced ({', '.join(keep)})", reduced_size,
          evals_to(reduced_curve, 0.8), evals_to(reduced_curve, 0.9))],
        title="Ablation - tuning on the full vs importance-reduced space (convolution, RTX 3090)")
    write_result("ablation_reduced_space.txt", text)

    assert 0 < reduced_size < cache.num_valid
    # The reduced space still contains near-optimal configurations...
    assert reduced_curve.optimum_ms <= full_curve.optimum_ms * 1.05
    # ...and random search gets to 80% of optimal at least as quickly there.
    assert evals_to(reduced_curve, 0.8) <= evals_to(full_curve, 0.8)
