"""Ablation: optimizer portfolio vs the random-search baseline.

The suite exists so optimization algorithms can be compared on identical problems; this
benchmark performs that comparison on cache replays of two landscapes with opposite
character -- Pnpoly (small, moderately easy) and Convolution (large, hard for random
search per Fig. 2) -- and records the mean best-found relative performance per tuner.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import report
from repro.core.runner import run_tuning
from repro.tuners import all_tuners

from conftest import write_result

BUDGET = 150
REPETITIONS = 5


def test_ablation_tuner_comparison(benchmark, caches):
    """Every registered tuner on cache replays of Pnpoly and Convolution (RTX 3090)."""

    targets = {name: caches[(name, "RTX_3090")] for name in ("pnpoly", "convolution")}

    def build():
        rows = []
        for bench_name, cache in targets.items():
            optimum = cache.optimum()
            problem = cache.to_problem(strict=False)
            for tuner_name, factory in all_tuners().items():
                finals = []
                for rep in range(REPETITIONS):
                    problem.reset_cache()
                    result = run_tuning(factory(seed=rep), problem, max_evaluations=BUDGET)
                    finals.append(optimum / result.best_value)
                rows.append((bench_name, tuner_name, float(np.mean(finals)),
                             float(np.min(finals))))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = report.format_table(
        ("Benchmark", "Tuner", "Mean relative perf", "Worst relative perf"),
        [(b, t, f"{m:.3f}", f"{w:.3f}") for b, t, m, w in rows],
        title=f"Ablation - tuner comparison ({BUDGET} evaluations, {REPETITIONS} repetitions)")
    write_result("ablation_tuners.txt", text)

    by_key = {(b, t): m for b, t, m, _ in rows}
    # Every tuner finds something reasonable on the easy landscape.
    for (bench, tuner), mean_rel in by_key.items():
        if bench == "pnpoly" and tuner != "grid":
            assert mean_rel > 0.7, (bench, tuner, mean_rel)
    # On the hard landscape at least one model/population-based optimizer beats the
    # random-search baseline -- the reason the suite compares optimizers at all.
    baseline = by_key[("convolution", "random")]
    contenders = [by_key[("convolution", t)] for t in ("genetic", "surrogate", "greedy_ils")]
    assert max(contenders) >= baseline - 0.05
