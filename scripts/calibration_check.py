"""Calibration check: compare the simulated campaigns against the paper's headline numbers.

Run with ``python scripts/calibration_check.py [--full]``.  The default uses reduced
sample sizes so the check finishes in a couple of minutes; ``--full`` reproduces the
paper-scale campaign sizes.
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.campaign import Campaign
from repro.analysis.convergence import random_search_convergence
from repro.analysis.distribution import distribution_summary
from repro.analysis.importance import importance_study
from repro.analysis.portability import portability_study
from repro.analysis.speedup import speedup_study
from repro.analysis import report
from repro.kernels import all_benchmarks
from repro.gpus import all_gpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="paper-scale campaign sizes")
    parser.add_argument("--gpus", nargs="*", default=None, help="subset of GPUs")
    args = parser.parse_args()

    benchmarks = all_benchmarks()
    gpus = all_gpus()
    if args.gpus:
        gpus = {k: v for k, v in gpus.items() if k in set(args.gpus)}

    sample_size = 10_000 if args.full else 4_000
    campaign = Campaign(benchmarks, gpus, sample_size=sample_size)

    t0 = time.time()
    caches = campaign.all_caches()
    print(f"campaign built in {time.time() - t0:.1f}s "
          f"({sum(len(c) for c in caches.values())} evaluations)")

    print()
    print(report.format_distribution([distribution_summary(c) for c in caches.values()]))
    print()
    print(report.format_speedups(speedup_study(caches)))
    print()
    curves = [random_search_convergence(c, repetitions=50) for c in caches.values()]
    print(report.format_convergence(curves))
    print()
    matrices = portability_study(benchmarks, caches, gpus)
    print(report.format_portability(matrices))
    print()
    t0 = time.time()
    reports = importance_study(caches, n_estimators=120, max_depth=5, n_repeats=2,
                               max_samples=8000)
    print(f"(importance models fitted in {time.time() - t0:.1f}s)")
    print(report.format_importance(reports))


if __name__ == "__main__":
    main()
