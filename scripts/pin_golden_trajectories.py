"""Pin golden tuner trajectories for the trajectory-equivalence test suite.

Runs every in-repo tuner on every kernel benchmark (analytical-model problems on the
RTX 3090, plus cache-replay problems for one exhaustive-style and one sampled space)
and records each run's full observation sequence in compact form:
``[space_index, value, valid, error, evaluation_index]`` per observation.

The golden file was generated **at the seed (pre-index-native) revision** and is the
reference the parametrized test in ``tests/test_index_native.py`` compares against:
the index-native tuner runtime must reproduce every trajectory byte-for-byte (same
RNG streams, same configurations, same values, same error strings, same ordering).
Re-running this script on a revision that changes tuner semantics would silently
re-pin the goldens -- only do that deliberately, with a CHANGES.md note.

Usage::

    PYTHONPATH=src python scripts/pin_golden_trajectories.py
"""

from __future__ import annotations

import gzip
import json
import math
from pathlib import Path

from repro.core.runner import run_tuning
from repro.gpus.specs import RTX_3090
from repro.kernels import all_benchmarks
from repro.tuners import (
    DifferentialEvolution,
    GeneticAlgorithm,
    GreedyILS,
    GridSearch,
    LocalSearch,
    ParticleSwarm,
    RandomSearch,
    SimulatedAnnealing,
    SurrogateSearch,
)

BUDGET = 40
SEED = 2023
REPLAY_CACHE_POINTS = 400

OUT_PATH = Path(__file__).resolve().parent.parent / "tests" / "data" / \
    "golden_trajectories.json.gz"


def tuner_matrix() -> dict[str, object]:
    """The tuner configurations whose trajectories are pinned."""
    return {
        "random": lambda: RandomSearch(),
        "grid_shuffled": lambda: GridSearch(stride=7919, shuffle=True),
        "local_first": lambda: LocalSearch(strategy="first"),
        "local_best": lambda: LocalSearch(strategy="best"),
        "greedy_ils": lambda: GreedyILS(perturbation_strength=2),
        "annealing": lambda: SimulatedAnnealing(),
        "genetic": lambda: GeneticAlgorithm(population_size=10),
        "diff_evo": lambda: DifferentialEvolution(population_size=8),
        "pso": lambda: ParticleSwarm(swarm_size=8),
        "surrogate": lambda: SurrogateSearch(initial_samples=12, batch_size=4,
                                             candidate_pool=120, n_estimators=15),
    }


def problem_matrix() -> dict[str, object]:
    """Name -> zero-argument problem factory (fresh problem per tuning run)."""
    benchmarks = all_benchmarks()
    problems: dict[str, object] = {}
    for name, benchmark in benchmarks.items():
        problems[f"model:{name}"] = (
            lambda b=benchmark: b.problem(RTX_3090, with_noise=True))
    for name in ("hotspot", "gemm"):
        cache = benchmarks[name].build_cache(RTX_3090,
                                             sample_size=REPLAY_CACHE_POINTS, seed=5)
        problems[f"replay:{name}"] = (
            lambda c=cache: c.to_problem(strict=True, memoize=True))
    return problems


def encode_run(result, space) -> list[list]:
    rows = []
    for obs in result.observations:
        value = None if not math.isfinite(obs.value) else obs.value
        rows.append([int(space.index_of(obs.config)), value, bool(obs.valid),
                     obs.error, int(obs.evaluation_index)])
    return rows


def main() -> None:
    golden: dict[str, dict] = {
        "_meta": {"budget": BUDGET, "seed": SEED, "gpu": "RTX_3090",
                  "replay_cache_points": REPLAY_CACHE_POINTS,
                  "format": "[space_index, value|null, valid, error, evaluation_index]"},
        "runs": {},
    }
    tuners = tuner_matrix()
    for problem_name, make_problem in problem_matrix().items():
        for tuner_name, make_tuner in tuners.items():
            problem = make_problem()
            result = run_tuning(make_tuner(), problem, max_evaluations=BUDGET,
                                seed=SEED)
            key = f"{tuner_name}@{problem_name}"
            golden["runs"][key] = encode_run(result, problem.space)
            print(f"{key:>40}: {len(result)} observations, "
                  f"best {result.best_value:.4g}")

    OUT_PATH.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(golden, separators=(",", ":"), sort_keys=True)
    with gzip.GzipFile(OUT_PATH, "wb", mtime=0) as fh:
        fh.write(payload.encode("utf-8"))
    print(f"\nwrote {OUT_PATH} ({OUT_PATH.stat().st_size} bytes, "
          f"{len(golden['runs'])} runs)")


if __name__ == "__main__":
    main()
