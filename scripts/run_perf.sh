#!/usr/bin/env bash
# Entry point for the search-space engine perf suite.
#
#   scripts/run_perf.sh            run the full micro-benchmark harness and write
#                                  BENCH_perf.json (scalar vs vectorized timings)
#   scripts/run_perf.sh --smoke    run only the tier-2 perf smoke checks
#                                  (pytest marker `perf`, generous wall-clock
#                                  ceilings; fast enough for CI)
#
# Any further arguments are forwarded to the underlying command.
#
# The script expects the package to be installed (`pip install -e .`); when it
# is not -- a fresh checkout driven without an environment -- it falls back to
# the src-layout import path so the harness still runs.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! python -c "import repro" >/dev/null 2>&1; then
    export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
fi

if [[ "${1:-}" == "--smoke" ]]; then
    shift
    exec python -m pytest -m perf -q tests/test_perf_smoke.py "$@"
fi
exec python benchmarks/bench_perf_suite.py "$@"
