"""Quick calibration loop: per-benchmark distribution shape against paper targets.

Prints, for each benchmark on each GPU:
* max speedup over median (paper Fig. 4 target),
* fraction of valid configurations within 11.1% of the best runtime (controls how fast
  random search reaches 90% of optimal -- paper Fig. 2 target),
* estimated evaluations to 90% (0.693 / fraction).

Targets (from the paper):
  gemm / convolution : speedup 1.5-3x,  hundreds of evals to 90%  (fraction ~0.2-0.7%)
  pnpoly / dedisp    : speedup 1.5-3x,  ~100 evals to 90%         (fraction ~0.7-1.5%)
  nbody / expdist    : speedup 1.5-3x,  ~10 evals to 90%          (fraction ~5-15%)
  hotspot            : speedup ~11-12x, fast convergence          (fraction ~2-10%)
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.gpus import all_gpus
from repro.kernels import all_benchmarks

SAMPLED = {"hotspot", "dedispersion", "expdist"}


def main() -> None:
    gpu_names = sys.argv[1:] or ["RTX_3090", "RTX_2080_Ti"]
    benchmarks = all_benchmarks()
    gpus = all_gpus()
    sample = 3000
    for gpu_name in gpu_names:
        gpu = gpus[gpu_name]
        print(f"=== {gpu_name} ===")
        for name, bm in benchmarks.items():
            t0 = time.time()
            size = sample if (name in SAMPLED or bm.space.cardinality > 100_000) else None
            cache = bm.build_cache(gpu, sample_size=size, seed=1)
            values = cache.values()
            best = values.min()
            median = float(np.median(values))
            frac = float(np.mean(values <= best / 0.9))
            est = 0.693 / frac if frac > 0 else float("inf")
            print(f"  {name:14s} n={values.size:6d} speedup={median/best:6.2f}x "
                  f"frac90={frac*100:6.2f}% est_evals90={est:7.1f} "
                  f"best={best:9.3f} med={median:9.3f}  ({time.time()-t0:.1f}s)")


if __name__ == "__main__":
    main()
